package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridmtd/internal/attack"
	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/se"
	"gridmtd/internal/stat"
	"gridmtd/internal/subspace"
)

// DefaultDeltas are the detection-probability thresholds plotted in the
// paper's Fig. 6.
var DefaultDeltas = []float64{0.5, 0.8, 0.9, 0.95}

// EffectivenessConfig controls the η'(δ) evaluation. The zero value is
// completed with the paper's simulation protocol: 1000 random attacks with
// ‖a‖₁/‖z‖₁ ≈ 0.08, false-positive rate 5×10⁻⁴, and the analytic
// detection probability. The paper does not state its noise level; the
// default σ = 0.0015 p.u. (0.15 MW on the 100 MVA base) was calibrated so
// the η'(δ) curves land in the paper's Fig.-6 operating range (see
// EXPERIMENTS.md).
type EffectivenessConfig struct {
	// NumAttacks is the number of random stealthy attacks (default 1000).
	NumAttacks int
	// AttackRatio is the ‖a‖₁/‖z‖₁ scaling (default 0.08).
	AttackRatio float64
	// Sigma is the measurement noise standard deviation in per-unit
	// (default 0.0015).
	Sigma float64
	// Alpha is the BDD false-positive rate (default 5e-4).
	Alpha float64
	// Deltas are the detection-probability thresholds (default
	// DefaultDeltas).
	Deltas []float64
	// Seed seeds the attack sampler (and noise sampler under Monte Carlo).
	Seed int64
	// MonteCarlo switches from the analytic noncentral-χ² detection
	// probability to noise-resampling Monte Carlo (the paper's literal
	// protocol; slower, statistically identical — see the cross-validation
	// tests).
	MonteCarlo bool
	// NoiseTrials is the number of noise draws per attack under Monte
	// Carlo (default 1000).
	NoiseTrials int
	// ReportProbs requests the per-attack detection probabilities in
	// EffectivenessResult.DetectionProbs. Under the analytic path η'(δ) is
	// computed by noncentrality thresholding without evaluating per-attack
	// probabilities, so reporting them costs extra; sweeps that only need
	// η' leave this false. Monte Carlo always reports them.
	ReportProbs bool
}

func (c EffectivenessConfig) withDefaults() EffectivenessConfig {
	if c.NumAttacks <= 0 {
		c.NumAttacks = 1000
	}
	if c.AttackRatio <= 0 {
		c.AttackRatio = 0.08
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.0015
	}
	if c.Alpha <= 0 {
		c.Alpha = 5e-4
	}
	if len(c.Deltas) == 0 {
		c.Deltas = DefaultDeltas
	}
	if c.NoiseTrials <= 0 {
		c.NoiseTrials = 1000
	}
	return c
}

// EffectivenessResult reports the MTD quality metrics for one perturbation.
type EffectivenessResult struct {
	// Gamma is the subspace separation γ(H_old, H_new) (largest principal
	// angle; see internal/subspace).
	Gamma float64
	// Deltas are the evaluated thresholds.
	Deltas []float64
	// Eta[i] is η'(Deltas[i]): the fraction of attacks with detection
	// probability at least Deltas[i].
	Eta []float64
	// DetectionProbs holds P'_D(a) for each sampled attack when requested
	// via EffectivenessConfig.ReportProbs or Monte Carlo (nil otherwise).
	DetectionProbs []float64
	// UndetectableFraction is the fraction of sampled attacks that remain
	// perfectly stealthy under the new matrix (Proposition-1 condition,
	// detection probability = false-positive rate).
	UndetectableFraction float64
}

// EtaAt returns η'(δ) for an evaluated threshold δ, or an error if δ was
// not in the configured set.
func (r *EffectivenessResult) EtaAt(delta float64) (float64, error) {
	for i, d := range r.Deltas {
		if d == delta {
			return r.Eta[i], nil
		}
	}
	return 0, fmt.Errorf("core: delta %v was not evaluated", delta)
}

// AttackSet is a batch of pre-crafted stealthy attacks, reusable across
// many candidate perturbations (the paper's Figs. 6-8 evaluate the same
// 1000-attack set against every MTD).
type AttackSet struct {
	// Vectors are the crafted attacks a = H_old·c.
	Vectors []*attack.Vector
	// HOld is the measurement matrix the attacks were crafted against.
	HOld *mat.Dense
}

// SampleAttacks draws cfg.NumAttacks random stealthy attacks against the
// configuration xOld with operating measurements zOld.
func SampleAttacks(n *grid.Network, xOld, zOld []float64, cfg EffectivenessConfig) (*AttackSet, error) {
	cfg = cfg.withDefaults()
	if len(zOld) != n.M() {
		return nil, errors.New("core: operating measurement vector has wrong length")
	}
	hOld := n.MeasurementMatrix(xOld)
	rng := rand.New(rand.NewSource(cfg.Seed))
	vecs := make([]*attack.Vector, 0, cfg.NumAttacks)
	for k := 0; k < cfg.NumAttacks; k++ {
		av, err := attack.Random(rng, hOld, zOld, cfg.AttackRatio)
		if err != nil {
			return nil, fmt.Errorf("core: sampling attack %d: %w", k, err)
		}
		vecs = append(vecs, av)
	}
	return &AttackSet{Vectors: vecs, HOld: hOld}, nil
}

// EvaluateAttacks computes the effectiveness of the perturbation xNew
// against a pre-crafted attack set.
func EvaluateAttacks(n *grid.Network, set *AttackSet, xNew []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	cfg = cfg.withDefaults()
	if len(set.Vectors) == 0 {
		return nil, errors.New("core: empty attack set")
	}
	hNew := n.MeasurementMatrix(xNew)
	est, err := se.NewEstimator(hNew)
	if err != nil {
		return nil, fmt.Errorf("core: post-MTD estimator: %w", err)
	}
	bdd, err := se.NewBDD(est, cfg.Sigma, cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("core: post-MTD BDD: %w", err)
	}

	numAtt := len(set.Vectors)
	eta := make([]float64, len(cfg.Deltas))
	var probs []float64
	undetectable := 0

	if cfg.MonteCarlo {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		probs = make([]float64, numAtt)
		for k, av := range set.Vectors {
			if est.IsStealthy(av.A, 0) {
				undetectable++
			}
			probs[k] = est.DetectionProbabilityMC(bdd, av.A, cfg.NoiseTrials, rng)
		}
		for i, d := range cfg.Deltas {
			eta[i] = stat.FractionAtLeast(probs, d)
		}
	} else {
		// Fast analytic path: P'_D(a) ≥ δ iff the residual component
		// ‖(I−Γ')a‖ meets the noncentrality threshold σ·sqrt(λ_δ).
		x := (bdd.Tau / bdd.Sigma) * (bdd.Tau / bdd.Sigma)
		dof := float64(bdd.DOF)
		raThresh := make([]float64, len(cfg.Deltas))
		for i, d := range cfg.Deltas {
			if d >= 1 {
				raThresh[i] = math.Inf(1)
				continue
			}
			lambda, err := stat.NoncentralChiSquareLambdaForSF(dof, x, d)
			if err != nil {
				return nil, fmt.Errorf("core: inverting detection probability: %w", err)
			}
			raThresh[i] = bdd.Sigma * math.Sqrt(lambda)
		}
		ras := make([]float64, numAtt)
		for k, av := range set.Vectors {
			ra := est.ResidualComponent(av.A)
			ras[k] = ra
			if ra <= 1e-8*mat.Norm2(av.A) {
				undetectable++
			}
		}
		for i, thresh := range raThresh {
			cnt := 0
			for _, ra := range ras {
				if ra >= thresh {
					cnt++
				}
			}
			eta[i] = float64(cnt) / float64(numAtt)
		}
		if cfg.ReportProbs {
			probs = make([]float64, numAtt)
			for k, ra := range ras {
				lambda := (ra / bdd.Sigma) * (ra / bdd.Sigma)
				pd, err := stat.NoncentralChiSquareSF(dof, lambda, x)
				if err != nil {
					return nil, fmt.Errorf("core: detection probability: %w", err)
				}
				probs[k] = pd
			}
		}
	}

	return &EffectivenessResult{
		Gamma:                subspace.Gamma(set.HOld, hNew),
		Deltas:               mat.CopyVec(cfg.Deltas),
		Eta:                  eta,
		DetectionProbs:       probs,
		UndetectableFraction: float64(undetectable) / float64(numAtt),
	}, nil
}

// Effectiveness evaluates the MTD that changes the reactances from xOld
// (the configuration the attacker learned) to xNew. zOld is the operating
// measurement vector under xOld used for attack scaling (see
// OperatingMeasurements). It samples stealthy attacks a = H(xOld)·c,
// computes each attack's detection probability under H(xNew), and reduces
// them to the η'(δ) curve.
func Effectiveness(n *grid.Network, xOld, xNew, zOld []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	set, err := SampleAttacks(n, xOld, zOld, cfg)
	if err != nil {
		return nil, err
	}
	return EvaluateAttacks(n, set, xNew, cfg)
}

// OperatingMeasurements solves the dispatch OPF at reactances x and returns
// the noiseless measurement vector z = [p; f; −f] (per-unit) of the
// resulting operating point. This is the z against which attack magnitudes
// are scaled.
func OperatingMeasurements(n *grid.Network, x []float64) ([]float64, error) {
	res, err := opf.SolveDispatch(n, x)
	if err != nil {
		return nil, fmt.Errorf("core: operating point: %w", err)
	}
	inj := n.InjectionsMW(res.DispatchMW)
	fl, err := dcflow.Solve(n, x, inj)
	if err != nil {
		return nil, err
	}
	return dcflow.Measurements(n, inj, fl), nil
}

// Gamma returns the subspace separation γ between the measurement matrices
// at the two reactance settings.
func Gamma(n *grid.Network, xOld, xNew []float64) float64 {
	return subspace.Gamma(n.MeasurementMatrix(xOld), n.MeasurementMatrix(xNew))
}
