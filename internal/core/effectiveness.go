package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"gridmtd/internal/attack"
	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/se"
	"gridmtd/internal/stat"
	"gridmtd/internal/subspace"
)

// DefaultDeltas are the detection-probability thresholds plotted in the
// paper's Fig. 6.
var DefaultDeltas = []float64{0.5, 0.8, 0.9, 0.95}

// EffectivenessConfig controls the η'(δ) evaluation. The zero value is
// completed with the paper's simulation protocol: 1000 random attacks with
// ‖a‖₁/‖z‖₁ ≈ 0.08, false-positive rate 5×10⁻⁴, and the analytic
// detection probability. The paper does not state its noise level; the
// default σ = 0.0015 p.u. (0.15 MW on the 100 MVA base) was calibrated so
// the η'(δ) curves land in the paper's Fig.-6 operating range (see
// EXPERIMENTS.md).
type EffectivenessConfig struct {
	// NumAttacks is the number of random stealthy attacks (default 1000).
	NumAttacks int
	// AttackRatio is the ‖a‖₁/‖z‖₁ scaling (default 0.08).
	AttackRatio float64
	// Sigma is the measurement noise standard deviation in per-unit
	// (default 0.0015).
	Sigma float64
	// Alpha is the BDD false-positive rate (default 5e-4).
	Alpha float64
	// Deltas are the detection-probability thresholds (default
	// DefaultDeltas).
	Deltas []float64
	// Seed seeds the attack sampler (and noise sampler under Monte Carlo).
	Seed int64
	// MonteCarlo switches from the analytic noncentral-χ² detection
	// probability to noise-resampling Monte Carlo (the paper's literal
	// protocol; slower, statistically identical — see the cross-validation
	// tests).
	MonteCarlo bool
	// NoiseTrials is the number of noise draws per attack under Monte
	// Carlo (default 1000).
	NoiseTrials int
	// ReportProbs requests the per-attack detection probabilities in
	// EffectivenessResult.DetectionProbs. Under the analytic path η'(δ) is
	// computed by noncentrality thresholding without evaluating per-attack
	// probabilities, so reporting them costs extra; sweeps that only need
	// η' leave this false. Monte Carlo always reports them.
	ReportProbs bool
	// Parallelism bounds the number of workers the analytic per-attack
	// loop fans out over (0 = GOMAXPROCS, 1 = serial). Results are
	// identical for every setting. The Monte Carlo path is inherently
	// sequential (one noise stream) and ignores it.
	Parallelism int
	// GammaBackend selects the attack-screening strategy (AutoGamma
	// resolves through the process default, exact when none is set). Under
	// SketchGamma the analytic path screens the per-attack residuals
	// through the sparse-Gram sketch and re-evaluates
	// only the attacks near a decision threshold exactly, so every reported
	// η′(δ) row is identical to the exact path's. Monte Carlo and
	// ReportProbs evaluations always take the exact path.
	GammaBackend GammaBackend
	// Estimators optionally memoizes the post-MTD estimator per candidate
	// x_new (see EstimatorCache). Only fast attack sets (large-case sparse
	// backend) consult it — the small-case path keeps its historical
	// bitwise construction; nil keeps the historical behavior everywhere.
	Estimators *EstimatorCache `json:"-"`
}

func (c EffectivenessConfig) withDefaults() EffectivenessConfig {
	if c.NumAttacks <= 0 {
		c.NumAttacks = 1000
	}
	if c.AttackRatio <= 0 {
		c.AttackRatio = 0.08
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.0015
	}
	if c.Alpha <= 0 {
		c.Alpha = 5e-4
	}
	if len(c.Deltas) == 0 {
		c.Deltas = DefaultDeltas
	}
	if c.NoiseTrials <= 0 {
		c.NoiseTrials = 1000
	}
	return c
}

// EffectivenessResult reports the MTD quality metrics for one perturbation.
type EffectivenessResult struct {
	// Gamma is the subspace separation γ(H_old, H_new) (largest principal
	// angle; see internal/subspace).
	Gamma float64
	// Deltas are the evaluated thresholds.
	Deltas []float64
	// Eta[i] is η'(Deltas[i]): the fraction of attacks with detection
	// probability at least Deltas[i].
	Eta []float64
	// DetectionProbs holds P'_D(a) for each sampled attack when requested
	// via EffectivenessConfig.ReportProbs or Monte Carlo (nil otherwise).
	DetectionProbs []float64
	// UndetectableFraction is the fraction of sampled attacks that remain
	// perfectly stealthy under the new matrix (Proposition-1 condition,
	// detection probability = false-positive rate).
	UndetectableFraction float64
}

// EtaAt returns η'(δ) for an evaluated threshold δ, or an error if δ was
// not in the configured set.
func (r *EffectivenessResult) EtaAt(delta float64) (float64, error) {
	for i, d := range r.Deltas {
		if d == delta {
			return r.Eta[i], nil
		}
	}
	return 0, fmt.Errorf("core: delta %v was not evaluated", delta)
}

// AttackSet is a batch of pre-crafted stealthy attacks, reusable across
// many candidate perturbations (the paper's Figs. 6-8 evaluate the same
// 1000-attack set against every MTD). The attacks are packed into one
// contiguous backing array (see attack.Batch), and the orthonormal basis
// of the crafting matrix H_old — which every γ evaluation against the set
// needs — is computed once on first use and cached.
type AttackSet struct {
	// Batch holds the crafted attacks a = H_old·c, one per row.
	Batch *attack.Batch
	// HOld is the measurement matrix the attacks were crafted against.
	HOld *mat.Dense

	// fast selects the large-case γ kernels and the reduced γ-equivalent
	// measurement representation (set by SampleAttacks when the network is
	// at or above grid.SparseThreshold buses; zero-value AttackSets keep
	// the bitwise-exact path).
	fast bool

	// sketch is the sparse-Gram screening evaluator for the analytic
	// residual path, built by SampleAttacks when the configured γ backend
	// resolves to SketchGamma (nil otherwise — zero-value and exact sets
	// evaluate exactly throughout). anorm caches ‖a‖ per attack, the
	// candidate-independent half of the screened residual identity.
	sketch *subspace.SketchEvaluator
	anorm  []float64
	skPool sync.Pool // *subspace.SketchSession for the screening chunks

	basisOnce sync.Once
	basisOld  *subspace.Basis
	pool      sync.Pool // *evalWorkspace, reused across EvaluateAttacks calls
}

// evalWorkspace carries the per-evaluation scratch of EvaluateAttacks.
type evalWorkspace struct {
	ht *mat.Dense // candidate Hᵀ for the γ computation
	ws subspace.Workspace
}

// Len returns the number of attacks in the set.
func (s *AttackSet) Len() int {
	if s.Batch == nil {
		return 0
	}
	return s.Batch.Len()
}

// At materializes attack i as a standalone vector (copies).
func (s *AttackSet) At(i int) *attack.Vector { return s.Batch.At(i) }

// oldBasis returns the cached orthonormal basis of Col(HOld). Fast sets
// (SampleAttacks on a ≥-threshold network) precompute it in the reduced
// γ-equivalent representation; this lazy path serves the exact one.
func (s *AttackSet) oldBasis() *subspace.Basis {
	s.basisOnce.Do(func() {
		ht := mat.TransposeInto(mat.NewDense(s.HOld.Cols(), s.HOld.Rows()), s.HOld)
		s.basisOld = subspace.ComputeBasisT(ht, 0)
	})
	return s.basisOld
}

// SampleAttacks draws cfg.NumAttacks random stealthy attacks against the
// configuration xOld with operating measurements zOld.
func SampleAttacks(n *grid.Network, xOld, zOld []float64, cfg EffectivenessConfig) (*AttackSet, error) {
	cfg = cfg.withDefaults()
	if len(zOld) != n.M() {
		return nil, errors.New("core: operating measurement vector has wrong length")
	}
	hOld := n.MeasurementMatrix(xOld)
	rng := rand.New(rand.NewSource(cfg.Seed))
	batch, err := attack.RandomBatch(rng, hOld, zOld, cfg.AttackRatio, cfg.NumAttacks)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	set := &AttackSet{
		Batch: batch,
		HOld:  hOld,
		// Same backend-resolved seam as NewGammaEvaluator: -backend dense
		// keeps the bitwise γ path even on large cases.
		fast: grid.EffectiveBackend(n, grid.AutoBackend) == grid.SparseBackend,
	}
	if set.fast {
		// Precompute the H_old basis in the reduced γ-equivalent
		// representation while the network is at hand (the lazy oldBasis
		// path only has the full matrix).
		set.basisOnce.Do(func() {
			ht := mat.NewDense(n.N()-1, n.GammaAmbient())
			n.MeasurementMatrixTGammaInto(xOld, ht)
			set.basisOld = subspace.ComputeBasisTFast(ht, 0)
		})
	}
	if subspace.EffectiveGammaBackend(cfg.GammaBackend) == SketchGamma {
		// Screening machinery for the analytic residual path. A failed
		// construction (rank-deficient x_old Gram matrix) silently keeps the
		// exact path — the same degrade rule as the γ engine.
		et, g := n.GammaSketchOperands()
		dOld := make([]float64, n.L())
		if sk, err := subspace.NewSketchEvaluator(et, g, invInto(dOld, xOld), subspace.SketchConfig{Seed: 1}); err == nil {
			set.sketch = sk
			set.anorm = make([]float64, batch.Len())
			for k := range set.anorm {
				set.anorm[k] = mat.Norm2(batch.A(k))
			}
		}
	}
	return set, nil
}

// EvaluateAttacks computes the effectiveness of the perturbation xNew
// against a pre-crafted attack set. The analytic path scores the attacks
// in parallel chunks (cfg.Parallelism workers); every number it produces
// is bitwise identical to the historical sequential evaluation.
//
// When the set carries the sketch machinery (SampleAttacks under a
// SketchGamma effectiveness config) and the evaluation is analytic without
// per-attack probabilities, the residuals are screened through the
// sparse-Gram identity ‖(I−Γ′)a‖² = ‖a‖² − ‖L₂⁻¹P₂(M₁₂ᵀc)‖² instead of the
// dense QR; any attack whose screened residual lands inside a tolerance
// band around a decision threshold (a δ noncentrality threshold or the
// undetectability cutoff) is re-evaluated exactly, so the reported η′(δ)
// rows and UndetectableFraction are identical to the exact path's.
func EvaluateAttacks(n *grid.Network, set *AttackSet, xNew []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	cfg = cfg.withDefaults()
	if set.Len() == 0 {
		return nil, errors.New("core: empty attack set")
	}
	useSketch := set.sketch != nil && !cfg.MonteCarlo && !cfg.ReportProbs
	var hNew *mat.Dense
	var est *se.Estimator
	// ensureEst builds the dense QR estimator on demand: always on the
	// exact path, lazily on the sketched path (only if a screening band
	// triggers an exact re-check). Fast sets with a cache take the memoized
	// rank-structured build (1e-9-agreement contract); the bitwise dense
	// path never does.
	ensureEst := func() (*se.Estimator, error) {
		if est == nil {
			if set.fast && cfg.Estimators != nil {
				e, err := cfg.Estimators.Get(n, xNew)
				if err != nil {
					return nil, fmt.Errorf("core: post-MTD estimator: %w", err)
				}
				est = e
				return est, nil
			}
			if hNew == nil {
				hNew = n.MeasurementMatrix(xNew)
			}
			e, err := se.NewEstimator(hNew)
			if err != nil {
				return nil, fmt.Errorf("core: post-MTD estimator: %w", err)
			}
			est = e
		}
		return est, nil
	}
	var bdd *se.BDD
	if useSketch {
		b, err := se.NewBDDForDOF(n.M()-(n.N()-1), cfg.Sigma, cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("core: post-MTD BDD: %w", err)
		}
		bdd = b
	} else {
		if _, err := ensureEst(); err != nil {
			return nil, err
		}
		b, err := se.NewBDD(est, cfg.Sigma, cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("core: post-MTD BDD: %w", err)
		}
		bdd = b
	}

	numAtt := set.Len()
	eta := make([]float64, len(cfg.Deltas))
	var probs []float64
	undetectable := 0

	if cfg.MonteCarlo {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		probs = make([]float64, numAtt)
		for k := 0; k < numAtt; k++ {
			a := set.Batch.A(k)
			if est.IsStealthy(a, 0) {
				undetectable++
			}
			probs[k] = est.DetectionProbabilityMC(bdd, a, cfg.NoiseTrials, rng)
		}
		for i, d := range cfg.Deltas {
			eta[i] = stat.FractionAtLeast(probs, d)
		}
	} else {
		// Fast analytic path: P'_D(a) ≥ δ iff the residual component
		// ‖(I−Γ')a‖ meets the noncentrality threshold σ·sqrt(λ_δ).
		x := (bdd.Tau / bdd.Sigma) * (bdd.Tau / bdd.Sigma)
		dof := float64(bdd.DOF)
		raThresh := make([]float64, len(cfg.Deltas))
		for i, d := range cfg.Deltas {
			if d >= 1 {
				raThresh[i] = math.Inf(1)
				continue
			}
			lambda, err := lambdaForSFCached(dof, x, d)
			if err != nil {
				return nil, fmt.Errorf("core: inverting detection probability: %w", err)
			}
			raThresh[i] = bdd.Sigma * math.Sqrt(lambda)
		}
		ras := make([]float64, numAtt)
		if cfg.ReportProbs {
			probs = make([]float64, numAtt)
		}
		sketchDone := false
		if useSketch {
			ok, err := set.screenedResiduals(n, xNew, cfg.Parallelism, raThresh, ras, &undetectable, ensureEst)
			if err != nil {
				return nil, err
			}
			sketchDone = ok
			// ok=false (a candidate Gram matrix within roundoff of rank
			// deficiency) falls through to the exact loop below.
		}
		if !sketchDone {
			if _, err := ensureEst(); err != nil {
				return nil, err
			}
			var firstErr error
			undetectable, firstErr = forEachAttackChunk(numAtt, cfg.Parallelism, func(from, to int) (int, error) {
				var ws se.ResidualWorkspace
				undet := 0
				for k := from; k < to; k++ {
					a := set.Batch.A(k)
					ra := est.ResidualWS(&ws, a)
					ras[k] = ra
					if ra <= 1e-8*mat.Norm2(a) {
						undet++
					}
					if probs != nil {
						lambda := (ra / bdd.Sigma) * (ra / bdd.Sigma)
						pd, err := stat.NoncentralChiSquareSF(dof, lambda, x)
						if err != nil {
							return undet, fmt.Errorf("core: detection probability: %w", err)
						}
						probs[k] = pd
					}
				}
				return undet, nil
			})
			if firstErr != nil {
				return nil, firstErr
			}
		}
		for i, thresh := range raThresh {
			cnt := 0
			for _, ra := range ras {
				if ra >= thresh {
					cnt++
				}
			}
			eta[i] = float64(cnt) / float64(numAtt)
		}
	}

	// γ against the cached basis of H_old; the candidate side reuses the
	// pooled workspace. Fast sets evaluate in the reduced γ-equivalent
	// representation (identical angles, 38% fewer reduction rows).
	w, _ := set.pool.Get().(*evalWorkspace)
	if w == nil {
		cols := n.M()
		if set.fast {
			cols = n.GammaAmbient()
		}
		w = &evalWorkspace{ht: mat.NewDense(n.N()-1, cols)}
		w.ws.Fast = set.fast
	}
	if set.fast {
		n.MeasurementMatrixTGammaInto(xNew, w.ht)
	} else {
		if hNew == nil {
			hNew = n.MeasurementMatrix(xNew)
		}
		mat.TransposeInto(w.ht, hNew)
	}
	gamma := w.ws.GammaBases(set.oldBasis(), w.ws.BasisT(w.ht, 0))
	set.pool.Put(w)

	return &EffectivenessResult{
		Gamma:                gamma,
		Deltas:               mat.CopyVec(cfg.Deltas),
		Eta:                  eta,
		DetectionProbs:       probs,
		UndetectableFraction: float64(undetectable) / float64(numAtt),
	}, nil
}

// errSketchRankDeficient signals that the screening session could not
// factor a candidate Gram matrix; the caller falls back to the exact loop.
var errSketchRankDeficient = errors.New("core: sketch candidate rank-deficient")

// screenBand is the relative half-width of the exact-re-check band around
// every residual decision threshold. The sparse-Gram residual identity is
// accurate to roughly κ(M₂₂)·ε ≲ 1e-10 relative, so a 1e-6 band certifies
// every out-of-band decision with orders of magnitude to spare while
// re-checking only the measure-small set of genuinely near-threshold
// attacks.
const screenBand = 1e-6

// screenedResiduals fills ras with the per-attack residuals under the
// candidate xNew through the sparse-Gram screen, re-evaluating exactly any
// attack whose screened value cannot certify a decision: a squared
// residual within screenBand of a δ noncentrality threshold, or small
// enough (≤ 1e-10·‖a‖², which subsumes cancellation noise and the
// 1e-8·‖a‖ undetectability cutoff) that the subtraction identity has lost
// its precision. It also counts the undetectable attacks, with the exact
// path's cutoff semantics. ok=false (with a nil error) means a candidate
// Gram matrix was rank-deficient and the caller must run the exact loop.
func (s *AttackSet) screenedResiduals(n *grid.Network, xNew []float64, parallelism int, raThresh, ras []float64, undetectable *int, ensureEst func() (*se.Estimator, error)) (ok bool, err error) {
	numAtt := s.Len()
	d := invInto(make([]float64, n.L()), xNew)
	ras2 := make([]float64, numAtt)
	_, chunkErr := forEachAttackChunk(numAtt, parallelism, func(from, to int) (int, error) {
		ss, _ := s.skPool.Get().(*subspace.SketchSession)
		if ss == nil {
			ss = s.sketch.NewSession()
		}
		defer s.skPool.Put(ss)
		if !ss.PrepareCandidate(d) {
			return 0, errSketchRankDeficient
		}
		for k := from; k < to; k++ {
			ras2[k] = ss.ResidualSq(s.Batch.C(k), s.anorm[k]*s.anorm[k])
		}
		return 0, nil
	})
	if chunkErr != nil {
		if errors.Is(chunkErr, errSketchRankDeficient) {
			return false, nil
		}
		return false, chunkErr
	}
	var ws se.ResidualWorkspace
	undet := 0
	for k := 0; k < numAtt; k++ {
		na := s.anorm[k]
		r2 := ras2[k]
		recheck := r2 <= 1e-10*na*na
		if !recheck {
			for _, th := range raThresh {
				if !math.IsInf(th, 1) && math.Abs(r2-th*th) <= screenBand*(na*na+th*th) {
					recheck = true
					break
				}
			}
		}
		switch {
		case recheck:
			est, err := ensureEst()
			if err != nil {
				return false, err
			}
			ras[k] = est.ResidualWS(&ws, s.Batch.A(k))
		case r2 > 0:
			ras[k] = math.Sqrt(r2)
		default:
			ras[k] = 0
		}
		if ras[k] <= 1e-8*na {
			undet++
		}
	}
	*undetectable = undet
	return true, nil
}

// lambdaKey identifies one noncentrality inversion.
type lambdaKey struct{ dof, x, delta float64 }

// lambdaCache memoizes stat.NoncentralChiSquareLambdaForSF. The inversion
// bisects the noncentral-χ² survival function (dozens of incomplete-gamma
// evaluations) yet depends only on the detector geometry (DOF, τ²/σ²) and
// the threshold δ — constants across an entire η′ sweep — so caching it
// removes roughly half the analytic evaluation cost. Cached values are the
// function's own outputs, so results are unchanged.
var lambdaCache sync.Map // lambdaKey -> float64

func lambdaForSFCached(dof, x, delta float64) (float64, error) {
	key := lambdaKey{dof, x, delta}
	if v, ok := lambdaCache.Load(key); ok {
		return v.(float64), nil
	}
	lambda, err := stat.NoncentralChiSquareLambdaForSF(dof, x, delta)
	if err != nil {
		return 0, err
	}
	lambdaCache.Store(key, lambda)
	return lambda, nil
}

// forEachAttackChunk splits [0, n) into contiguous chunks, runs fn on each
// (concurrently when parallelism allows), and returns the summed int
// results plus the error of the lowest-indexed failing chunk. With
// contiguous ascending chunks and per-index output slots the combined
// result is independent of the worker count.
func forEachAttackChunk(n, parallelism int, fn func(from, to int) (int, error)) (int, error) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		from := w * per
		to := from + per
		if to > n {
			to = n
		}
		if from >= to {
			continue
		}
		wg.Add(1)
		go func(w, from, to int) {
			defer wg.Done()
			counts[w], errs[w] = fn(from, to)
		}(w, from, to)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	for _, err := range errs {
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Effectiveness evaluates the MTD that changes the reactances from xOld
// (the configuration the attacker learned) to xNew. zOld is the operating
// measurement vector under xOld used for attack scaling (see
// OperatingMeasurements). It samples stealthy attacks a = H(xOld)·c,
// computes each attack's detection probability under H(xNew), and reduces
// them to the η'(δ) curve.
func Effectiveness(n *grid.Network, xOld, xNew, zOld []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	set, err := SampleAttacks(n, xOld, zOld, cfg)
	if err != nil {
		return nil, err
	}
	return EvaluateAttacks(n, set, xNew, cfg)
}

// OperatingMeasurements solves the dispatch OPF at reactances x and returns
// the noiseless measurement vector z = [p; f; −f] (per-unit) of the
// resulting operating point. This is the z against which attack magnitudes
// are scaled.
func OperatingMeasurements(n *grid.Network, x []float64) ([]float64, error) {
	res, err := opf.SolveDispatch(n, x)
	if err != nil {
		return nil, fmt.Errorf("core: operating point: %w", err)
	}
	inj := n.InjectionsMW(res.DispatchMW)
	fl, err := dcflow.Solve(n, x, inj)
	if err != nil {
		return nil, err
	}
	return dcflow.Measurements(n, inj, fl), nil
}

// Gamma returns the subspace separation γ between the measurement matrices
// at the two reactance settings.
func Gamma(n *grid.Network, xOld, xNew []float64) float64 {
	return subspace.Gamma(n.MeasurementMatrix(xOld), n.MeasurementMatrix(xNew))
}
