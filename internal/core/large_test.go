package core

import (
	"math"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/subspace"
)

// TestGammaFastKernelsAgree pins the large-case γ contract: the evaluator
// (which selects the multi-accumulator/blocked kernels at or above
// grid.SparseThreshold buses) must agree with the exact uncached
// subspace.Gamma to 1e-9 radians.
func TestGammaFastKernelsAgree(t *testing.T) {
	cases := []string{"ieee57"}
	if !testing.Short() {
		cases = append(cases, "ieee118")
	}
	for _, name := range cases {
		n, err := grid.CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if n.N() < grid.SparseThreshold {
			t.Fatalf("%s unexpectedly below the fast-kernel threshold", name)
		}
		xOld := n.Reactances()
		ev := NewGammaEvaluator(n, xOld)
		lo, hi := n.DFACTSBounds()
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			xd := make([]float64, len(lo))
			for i := range xd {
				xd[i] = lo[i] + frac*(hi[i]-lo[i])
			}
			xNew := n.ExpandDFACTS(xd)
			fast := ev.Gamma(xNew)
			exact := subspace.Gamma(n.MeasurementMatrix(xOld), n.MeasurementMatrix(xNew))
			// Near γ = 0 (the box midpoint is x_old itself) acos turns
			// sub-ulp singular-value noise into ~1e-8 angle noise, so the
			// agreement check moves to the well-conditioned cosine scale
			// there.
			if exact < 1e-6 {
				if math.Abs(math.Cos(fast)-math.Cos(exact)) > 1e-12 {
					t.Fatalf("%s frac %.2f: near-zero γ disagrees: fast %.3g vs exact %.3g", name, frac, fast, exact)
				}
				continue
			}
			if math.Abs(fast-exact) > 1e-9 {
				t.Fatalf("%s frac %.2f: fast γ %.15g vs exact %.15g", name, frac, fast, exact)
			}
		}
	}
}

// TestSelectMTDParallelismInvariantSparse verifies the determinism
// contract on the warm-started sparse path: the warm LP basis lives in
// per-worker sessions and is reset at every local search, so the identical
// Selection must come back for any worker count even though which worker
// runs which start is scheduling-dependent.
func TestSelectMTDParallelismInvariantSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("57-bus selections take a second")
	}
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	var sels []*Selection
	for _, par := range []int{1, 4} {
		sel, err := SelectMTD(n, xOld, SelectConfig{
			GammaThreshold: 0.05,
			Starts:         1,
			MaxEvals:       25,
			Seed:           3,
			BaselineCost:   1,
			Parallelism:    par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sels = append(sels, sel)
	}
	a, b := sels[0], sels[1]
	for i := range a.Reactances {
		if a.Reactances[i] != b.Reactances[i] {
			t.Fatalf("reactance %d differs across parallelism: %v vs %v", i, a.Reactances[i], b.Reactances[i])
		}
	}
	if a.Gamma != b.Gamma || a.OPF.CostPerHour != b.OPF.CostPerHour {
		t.Fatalf("selection metrics differ across parallelism: γ %v vs %v, cost %v vs %v",
			a.Gamma, b.Gamma, a.OPF.CostPerHour, b.OPF.CostPerHour)
	}
}

// TestSelectMTDIEEE118SparseSmoke is the large-case smoke: one quick-mode
// SelectMTD on the IEEE 118-bus system must complete through the sparse
// backend and meet its γ threshold. CI runs it explicitly so the sparse
// path cannot silently regress.
func TestSelectMTDIEEE118SparseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("118-bus selection takes seconds")
	}
	n, err := grid.CaseByName("ieee118")
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.NewBFactorizer(n).Backend(); got != grid.SparseBackend {
		t.Fatalf("auto backend on ieee118 = %v, want sparse", got)
	}
	xOld := n.Reactances()
	const gammaTh = 0.05
	sel, err := SelectMTD(n, xOld, SelectConfig{
		GammaThreshold: gammaTh,
		Starts:         1,
		MaxEvals:       30,
		Seed:           1,
		BaselineCost:   1, // skip the no-MTD baseline solve; cost metrics are not under test
	})
	if err != nil {
		t.Fatalf("SelectMTD(ieee118): %v", err)
	}
	if sel.Gamma < gammaTh-2e-3 {
		t.Fatalf("γ = %.4f below threshold %.2f", sel.Gamma, gammaTh)
	}
	if sel.OPF == nil || len(sel.OPF.DispatchMW) != len(n.Gens) {
		t.Fatal("missing OPF result")
	}

	// The dispatch engine's sparse and dense costs must agree closely on
	// the selected reactances (they solve the same LP from PTDFs that
	// agree to 1e-10).
	de, err := opf.NewDispatchEngineBackend(n, grid.DenseBackend)
	if err != nil {
		t.Fatal(err)
	}
	denseCost, err := de.Cost(sel.Reactances)
	if err != nil {
		t.Fatal(err)
	}
	rel := (denseCost - sel.OPF.CostPerHour) / denseCost
	if rel < -1e-6 || rel > 1e-6 {
		t.Fatalf("dense cost %.6f vs sparse-path cost %.6f (rel %g)", denseCost, sel.OPF.CostPerHour, rel)
	}
}

// TestIEEE300SparseSmoke is the 300-bus scaling smoke: the registry's
// largest case must resolve to the sparse backend, dispatch at its
// calibrated ratings, and evaluate γ through the fast kernels at a device
// corner. (A full 300-bus selection costs ~1 s per candidate — the
// selection machinery itself is smoked at 118 buses; this keeps the
// registry's largest case exercising the sparse dispatch and γ paths in
// seconds.)
func TestIEEE300SparseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("300-bus solves take seconds")
	}
	n, err := grid.CaseByName("ieee300")
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.NewBFactorizer(n).Backend(); got != grid.SparseBackend {
		t.Fatalf("auto backend on ieee300 = %v, want sparse", got)
	}
	engine, err := opf.NewDispatchEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch at the calibrated ratings, nominal reactances and at the
	// D-FACTS upper corner (the calibration leaves both operable).
	res, err := engine.Solve(n.Reactances())
	if err != nil {
		t.Fatalf("nominal dispatch: %v", err)
	}
	if math.Abs(mat.SumVec(res.DispatchMW)-n.TotalLoadMW()) > 1e-6*n.TotalLoadMW() {
		t.Fatalf("dispatch does not balance the %.0f MW demand", n.TotalLoadMW())
	}
	_, hi := n.DFACTSBounds()
	xCorner := n.ExpandDFACTS(hi)
	cornerCost, err := engine.Cost(xCorner)
	if err != nil {
		t.Fatalf("corner dispatch: %v", err)
	}
	if cornerCost < res.CostPerHour {
		t.Fatalf("corner cost %.1f below the nominal optimum %.1f", cornerCost, res.CostPerHour)
	}
	// The fast-kernel γ at the corner must clear the smoke threshold (the
	// 12-device deployment reaches ~0.16 rad) and agree with itself across
	// evaluator and session paths.
	ev := NewGammaEvaluator(n, n.Reactances())
	g := ev.Gamma(xCorner)
	if g < 0.05 {
		t.Fatalf("corner γ = %.4f, want a usable MTD range", g)
	}
	if gs := ev.NewSession().Gamma(xCorner); gs != g {
		t.Fatalf("session γ %.12f != evaluator γ %.12f", gs, g)
	}
}
