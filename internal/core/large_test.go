package core

import (
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
)

// TestSelectMTDIEEE118SparseSmoke is the large-case smoke: one quick-mode
// SelectMTD on the IEEE 118-bus system must complete through the sparse
// backend and meet its γ threshold. CI runs it explicitly so the sparse
// path cannot silently regress.
func TestSelectMTDIEEE118SparseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("118-bus selection takes seconds")
	}
	n, err := grid.CaseByName("ieee118")
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.NewBFactorizer(n).Backend(); got != grid.SparseBackend {
		t.Fatalf("auto backend on ieee118 = %v, want sparse", got)
	}
	xOld := n.Reactances()
	const gammaTh = 0.05
	sel, err := SelectMTD(n, xOld, SelectConfig{
		GammaThreshold: gammaTh,
		Starts:         1,
		MaxEvals:       30,
		Seed:           1,
		BaselineCost:   1, // skip the no-MTD baseline solve; cost metrics are not under test
	})
	if err != nil {
		t.Fatalf("SelectMTD(ieee118): %v", err)
	}
	if sel.Gamma < gammaTh-2e-3 {
		t.Fatalf("γ = %.4f below threshold %.2f", sel.Gamma, gammaTh)
	}
	if sel.OPF == nil || len(sel.OPF.DispatchMW) != len(n.Gens) {
		t.Fatal("missing OPF result")
	}

	// The dispatch engine's sparse and dense costs must agree closely on
	// the selected reactances (they solve the same LP from PTDFs that
	// agree to 1e-10).
	de, err := opf.NewDispatchEngineBackend(n, grid.DenseBackend)
	if err != nil {
		t.Fatal(err)
	}
	denseCost, err := de.Cost(sel.Reactances)
	if err != nil {
		t.Fatal(err)
	}
	rel := (denseCost - sel.OPF.CostPerHour) / denseCost
	if rel < -1e-6 || rel > 1e-6 {
		t.Fatalf("dense cost %.6f vs sparse-path cost %.6f (rel %g)", denseCost, sel.OPF.CostPerHour, rel)
	}
}
