package core

import (
	"math"
	"strings"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
	"gridmtd/internal/subspace"
)

// backendTestCases returns the registered cases the γ-backend agreement
// suite runs on: the paper's 14-bus system plus every large case in -short
// budget order.
func backendTestCases(t *testing.T) []string {
	t.Helper()
	cases := []string{"ieee14", "ieee57"}
	if !testing.Short() {
		cases = append(cases, "ieee118", "ieee300")
	}
	return cases
}

// backendTestPoints returns deterministic candidate D-FACTS settings
// spanning the device box.
func backendTestPoints(n *grid.Network) [][]float64 {
	lo, hi := n.DFACTSBounds()
	var pts [][]float64
	for _, frac := range []float64{0.0, 0.25, 0.6, 1.0} {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + frac*(hi[i]-lo[i])
		}
		pts = append(pts, xd)
	}
	// An asymmetric point: alternating corners exercises sign structure the
	// uniform fractions miss.
	xd := make([]float64, len(lo))
	for i := range xd {
		if i%2 == 0 {
			xd[i] = lo[i]
		} else {
			xd[i] = hi[i]
		}
	}
	return append(pts, xd)
}

// TestGammaSparseBackendAgreement pins the sparse backend's contract: the
// CSC-aware Gram-Schmidt must agree with the exact evaluator to 1e-9 rad
// (cosine scale near γ = 0, where acos amplifies sub-ulp noise).
func TestGammaSparseBackendAgreement(t *testing.T) {
	for _, name := range backendTestCases(t) {
		n, err := grid.CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		xOld := n.Reactances()
		exact := NewGammaEvaluatorBackend(n, xOld, ExactGamma)
		sparse := NewGammaEvaluatorBackend(n, xOld, SparseGamma)
		if sparse.Backend() != SparseGamma {
			t.Fatalf("%s: sparse evaluator reports backend %v", name, sparse.Backend())
		}
		for pi, xd := range backendTestPoints(n) {
			x := n.ExpandDFACTS(xd)
			ge, gs := exact.Gamma(x), sparse.Gamma(x)
			if ge < 1e-6 {
				if math.Abs(math.Cos(gs)-math.Cos(ge)) > 1e-12 {
					t.Errorf("%s point %d: near-zero γ disagrees: sparse %.3g vs exact %.3g", name, pi, gs, ge)
				}
				continue
			}
			if math.Abs(gs-ge) > 1e-9 {
				t.Errorf("%s point %d: sparse γ %.15g vs exact %.15g (|Δ| = %.3g)", name, pi, gs, ge, math.Abs(gs-ge))
			}
		}
	}
}

// sketchGammaBound is the documented sketch error contract:
// |γ_sketch − γ_exact| ≤ sketchGammaBound · max(1, γ_exact) whenever the
// sketch serves the evaluation (evaluations it refuses fall back to the
// exact path and are exact by construction). PERF.md records the measured
// margins behind the bound.
const sketchGammaBound = 1e-6

// TestGammaSketchBackendAgreement pins the sketch contract across the
// registered cases at fixed seeds: the documented relative-error bound,
// exact behavior of the automatic fallback, and the property that γ values
// are reproducible per seed.
func TestGammaSketchBackendAgreement(t *testing.T) {
	for _, name := range backendTestCases(t) {
		n, err := grid.CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		xOld := n.Reactances()
		exact := NewGammaEvaluatorBackend(n, xOld, ExactGamma)
		sketch := NewGammaEvaluatorBackend(n, xOld, SketchGamma)
		if sketch.Backend() != SketchGamma {
			t.Fatalf("%s: sketch evaluator degraded to %v", name, sketch.Backend())
		}
		for pi, xd := range backendTestPoints(n) {
			x := n.ExpandDFACTS(xd)
			ge, gk := exact.Gamma(x), sketch.Gamma(x)
			if math.Abs(gk-ge) > sketchGammaBound*math.Max(1, ge) {
				t.Errorf("%s point %d: sketch γ %.15g vs exact %.15g (|Δ| = %.3g beyond the documented bound)",
					name, pi, gk, ge, math.Abs(gk-ge))
			}
			// Determinism per seed: the same evaluation twice, and through a
			// fresh session, must reproduce bit-for-bit.
			if again := sketch.Gamma(x); again != gk {
				t.Errorf("%s point %d: repeated sketch γ drifted: %v vs %v", name, pi, again, gk)
			}
			if sess := sketch.NewSession().Gamma(x); sess != gk {
				t.Errorf("%s point %d: session sketch γ %v != pooled %v", name, pi, sess, gk)
			}
		}
		// GammaExact must serve the exact value regardless of backend: the
		// winner re-check SelectMTD applies.
		x := n.ExpandDFACTS(backendTestPoints(n)[3])
		if ge, gx := exact.Gamma(x), sketch.GammaExact(x); gx != ge {
			t.Errorf("%s: GammaExact %.15g != exact evaluator %.15g", name, gx, ge)
		}
	}
}

// TestGammaSketchSeedDeterminism pins that two independently-built sketch
// evaluators produce identical values (the seed, not construction order or
// memory layout, is the only randomness source).
func TestGammaSketchSeedDeterminism(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	a := NewGammaEvaluatorBackend(n, xOld, SketchGamma)
	b := NewGammaEvaluatorBackend(n, xOld, SketchGamma)
	for pi, xd := range backendTestPoints(n) {
		ga, gb := a.GammaDFACTS(xd), b.GammaDFACTS(xd)
		if ga != gb {
			t.Fatalf("point %d: independently-built sketch evaluators disagree: %v vs %v", pi, ga, gb)
		}
	}
}

// TestSketchWorkerCountInvariant is the determinism-across-worker-counts
// test for the sketch backend: a full MaxGamma search (corner poll fanned
// across workers + parallel multi-start, all γ evaluations through the
// sketch) must return the identical Selection for any worker count.
func TestSketchWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("57-bus searches take a second")
	}
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	de, err := opf.NewDispatchEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	var sels []*Selection
	for _, par := range []int{1, 4} {
		eng := NewEnginesSharedBackend(n, xOld, de, SketchGamma)
		sel, err := MaxGammaWith(eng, n, xOld, MaxGammaConfig{
			Starts:       2,
			MaxEvals:     30,
			Seed:         5,
			BaselineCost: 1,
			Parallelism:  par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sels = append(sels, sel)
	}
	a, b := sels[0], sels[1]
	if a.Gamma != b.Gamma {
		t.Fatalf("γ differs across worker counts: %v vs %v", a.Gamma, b.Gamma)
	}
	for i := range a.Reactances {
		if a.Reactances[i] != b.Reactances[i] {
			t.Fatalf("reactance %d differs across worker counts: %v vs %v", i, a.Reactances[i], b.Reactances[i])
		}
	}
}

// TestSelectMTDSketchReportsExactGamma pins the tolerance contract: a
// sketch-guided selection's reported γ must be the exact evaluator's value
// at the selected reactances, and must clear the threshold under the
// standard GammaTol.
func TestSelectMTDSketchReportsExactGamma(t *testing.T) {
	if testing.Short() {
		t.Skip("57-bus selection takes a second")
	}
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	de, err := opf.NewDispatchEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEnginesSharedBackend(n, xOld, de, SketchGamma)
	const gth = 0.05
	sel, err := SelectMTDWith(eng, n, xOld, SelectConfig{
		GammaThreshold: gth,
		Starts:         1,
		MaxEvals:       25,
		Seed:           3,
		BaselineCost:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := NewGammaEvaluatorBackend(n, xOld, ExactGamma)
	if want := exact.Gamma(sel.Reactances); sel.Gamma != want {
		t.Fatalf("reported γ %.15g is not the exact value %.15g", sel.Gamma, want)
	}
	if sel.Gamma < gth-2e-3 {
		t.Fatalf("γ %.4f below threshold %.2f", sel.Gamma, gth)
	}
}

// TestGammaBackendParseAndResolve covers the flag-facing surface: parse
// round-trips, the discoverability error listing every valid value, and
// the auto resolution rule (process default, exact when none).
func TestGammaBackendParseAndResolve(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want GammaBackend
	}{
		{"auto", AutoGamma}, {"", AutoGamma},
		{"exact", ExactGamma}, {"Exact", ExactGamma},
		{"sparse", SparseGamma}, {"sketch", SketchGamma},
	} {
		got, err := subspace.ParseGammaBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseGammaBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	_, err := subspace.ParseGammaBackend("bogus")
	if err == nil {
		t.Fatal("ParseGammaBackend accepted a bogus value")
	}
	for _, name := range []string{"auto", "exact", "sparse", "sketch"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("parse error %q does not list the valid value %q", err, name)
		}
	}
	if got := subspace.EffectiveGammaBackend(AutoGamma); got != ExactGamma {
		t.Errorf("auto resolves to %v with no default set, want exact", got)
	}
	subspace.SetDefaultGammaBackend(SketchGamma)
	if got := subspace.EffectiveGammaBackend(AutoGamma); got != SketchGamma {
		t.Errorf("auto resolves to %v under a sketch default", got)
	}
	subspace.SetDefaultGammaBackend(AutoGamma)
	if got := subspace.EffectiveGammaBackend(AutoGamma); got != ExactGamma {
		t.Errorf("auto resolves to %v after restoring the default", got)
	}
}
