package core

import (
	"sync"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/subspace"
)

// GammaEvaluator evaluates γ(H(x_old), H(x')) for many candidates x'
// against a fixed pre-perturbation configuration x_old. It orthonormalizes
// H(x_old) exactly once at construction and keeps per-goroutine workspaces
// (candidate-H buffer, Gram-Schmidt basis, cross-Gram matrix, SVD scratch)
// in a pool, so each evaluation performs only the candidate-side work and
// allocates nothing in steady state. Every floating-point operation matches
// the uncached subspace.Gamma path, so results are bitwise identical.
//
// A GammaEvaluator is safe for concurrent use; the parallel multi-start
// search shares one evaluator across all workers.
//
// At or above grid.SparseThreshold buses the evaluator selects the
// multi-accumulator/blocked large-case kernels (subspace.Workspace.Fast):
// the Gram-Schmidt, cross-Gram and Jacobi reductions run with broken
// dependency chains, which changes summation orders, so large-case γ
// values agree with the uncached subspace.Gamma only to rounding (well
// inside 1e-9). Below the threshold every floating-point operation matches
// the uncached path bitwise, as before.
type GammaEvaluator struct {
	n    *grid.Network
	fast bool
	qOld *subspace.Basis
	pool sync.Pool // *gammaWorkspace
}

type gammaWorkspace struct {
	ht    *mat.Dense // candidate Hᵀ, (N-1)×M
	ws    subspace.Workspace
	xFull []float64 // expanded reactance buffer, length L
}

// NewGammaEvaluator builds an evaluator for the pre-perturbation reactance
// vector xOld (full length-L vector).
func NewGammaEvaluator(n *grid.Network, xOld []float64) *GammaEvaluator {
	// The fast kernels follow the resolved backend choice (including the
	// -backend process default), so a dense-forced run is the historical
	// bitwise path end to end and a sparse-forced run gets the whole fast
	// family — γ and LP always sit on the same side of the contract.
	fast := grid.EffectiveBackend(n, grid.AutoBackend) == grid.SparseBackend
	var qOld *subspace.Basis
	if fast {
		// The fast path works in the reduced γ-equivalent representation
		// (flow block once, √2-weighted): identical angles from 38% fewer
		// reduction rows — see Network.MeasurementMatrixTGammaInto.
		ht := mat.NewDense(n.N()-1, n.GammaAmbient())
		n.MeasurementMatrixTGammaInto(xOld, ht)
		qOld = subspace.ComputeBasisTFast(ht, 0)
	} else {
		ht := mat.NewDense(n.N()-1, n.M())
		n.MeasurementMatrixTInto(xOld, ht)
		qOld = subspace.ComputeBasisT(ht, 0)
	}
	e := &GammaEvaluator{n: n, fast: fast, qOld: qOld}
	e.pool.New = func() any {
		cols := n.M()
		if fast {
			cols = n.GammaAmbient()
		}
		w := &gammaWorkspace{
			ht:    mat.NewDense(n.N()-1, cols),
			xFull: make([]float64, n.L()),
		}
		w.ws.Fast = fast
		return w
	}
	return e
}

// Gamma returns γ(H(x_old), H(x)) for a full reactance vector x.
func (e *GammaEvaluator) Gamma(x []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	g := e.gamma(w, x)
	e.pool.Put(w)
	return g
}

// GammaDFACTS returns γ(H(x_old), H(x')) where x' is the network's current
// reactance vector with the D-FACTS branches set to xd (ordered as
// DFACTSIndices). This is the inner-loop form used by the problem-(4)
// search.
func (e *GammaEvaluator) GammaDFACTS(xd []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	e.n.ExpandDFACTSInto(xd, w.xFull)
	g := e.gamma(w, w.xFull)
	e.pool.Put(w)
	return g
}

func (e *GammaEvaluator) gamma(w *gammaWorkspace, x []float64) float64 {
	if e.fast {
		e.n.MeasurementMatrixTGammaInto(x, w.ht)
	} else {
		e.n.MeasurementMatrixTInto(x, w.ht)
	}
	qNew := w.ws.BasisT(w.ht, 0)
	return w.ws.GammaBases(e.qOld, qNew)
}

// GammaSession is a single-goroutine view of a GammaEvaluator: it owns one
// workspace outright instead of borrowing from the pool per call, giving
// the parallel multi-start workers engine affinity without sync.Pool
// churn. γ evaluation carries no cross-call state, so session results are
// identical to the pooled path. Not safe for concurrent use.
type GammaSession struct {
	e *GammaEvaluator
	w *gammaWorkspace
}

// NewSession returns a fresh session with its own workspace.
func (e *GammaEvaluator) NewSession() *GammaSession {
	return &GammaSession{e: e, w: e.pool.New().(*gammaWorkspace)}
}

// Gamma is GammaEvaluator.Gamma on the session's private workspace.
func (s *GammaSession) Gamma(x []float64) float64 { return s.e.gamma(s.w, x) }

// GammaDFACTS is GammaEvaluator.GammaDFACTS on the session's workspace.
func (s *GammaSession) GammaDFACTS(xd []float64) float64 {
	s.e.n.ExpandDFACTSInto(xd, s.w.xFull)
	return s.e.gamma(s.w, s.w.xFull)
}
