package core

import (
	"sync"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/subspace"
)

// GammaEvaluator evaluates γ(H(x_old), H(x')) for many candidates x'
// against a fixed pre-perturbation configuration x_old. It orthonormalizes
// H(x_old) exactly once at construction and keeps per-goroutine workspaces
// (candidate-H buffer, Gram-Schmidt basis, cross-Gram matrix, SVD scratch)
// in a pool, so each evaluation performs only the candidate-side work and
// allocates nothing in steady state. Every floating-point operation matches
// the uncached subspace.Gamma path, so results are bitwise identical.
//
// A GammaEvaluator is safe for concurrent use; the parallel multi-start
// search shares one evaluator across all workers.
type GammaEvaluator struct {
	n    *grid.Network
	qOld *subspace.Basis
	pool sync.Pool // *gammaWorkspace
}

type gammaWorkspace struct {
	ht    *mat.Dense // candidate Hᵀ, (N-1)×M
	ws    subspace.Workspace
	xFull []float64 // expanded reactance buffer, length L
}

// NewGammaEvaluator builds an evaluator for the pre-perturbation reactance
// vector xOld (full length-L vector).
func NewGammaEvaluator(n *grid.Network, xOld []float64) *GammaEvaluator {
	ht := mat.NewDense(n.N()-1, n.M())
	n.MeasurementMatrixTInto(xOld, ht)
	e := &GammaEvaluator{n: n, qOld: subspace.ComputeBasisT(ht, 0)}
	e.pool.New = func() any {
		return &gammaWorkspace{
			ht:    mat.NewDense(n.N()-1, n.M()),
			xFull: make([]float64, n.L()),
		}
	}
	return e
}

// Gamma returns γ(H(x_old), H(x)) for a full reactance vector x.
func (e *GammaEvaluator) Gamma(x []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	g := e.gamma(w, x)
	e.pool.Put(w)
	return g
}

// GammaDFACTS returns γ(H(x_old), H(x')) where x' is the network's current
// reactance vector with the D-FACTS branches set to xd (ordered as
// DFACTSIndices). This is the inner-loop form used by the problem-(4)
// search.
func (e *GammaEvaluator) GammaDFACTS(xd []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	e.n.ExpandDFACTSInto(xd, w.xFull)
	g := e.gamma(w, w.xFull)
	e.pool.Put(w)
	return g
}

func (e *GammaEvaluator) gamma(w *gammaWorkspace, x []float64) float64 {
	e.n.MeasurementMatrixTInto(x, w.ht)
	qNew := w.ws.BasisT(w.ht, 0)
	return w.ws.GammaBases(e.qOld, qNew)
}
