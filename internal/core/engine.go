package core

import (
	"sync"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/subspace"
)

// GammaBackend selects the γ-evaluation strategy (re-exported from the
// subspace layer so the scenario/planner layers and the facade never
// import subspace directly): the exact reference evaluator, the CSC-aware
// sparse Gram-Schmidt, or the randomized sketch. See subspace.GammaBackend
// for the per-backend contracts.
type GammaBackend = subspace.GammaBackend

// γ-backend choices for NewGammaEvaluatorBackend and the -gamma flag.
const (
	AutoGamma   = subspace.AutoGamma
	ExactGamma  = subspace.ExactGamma
	SparseGamma = subspace.SparseGamma
	SketchGamma = subspace.SketchGamma
)

// GammaEvaluator evaluates γ(H(x_old), H(x')) for many candidates x'
// against a fixed pre-perturbation configuration x_old. It prepares the
// x_old side exactly once at construction and keeps per-goroutine
// workspaces in a pool, so each evaluation performs only the
// candidate-side work and allocates nothing in steady state.
//
// A GammaEvaluator is safe for concurrent use; the parallel multi-start
// search shares one evaluator across all workers.
//
// The candidate-side strategy is the pluggable γ-backend layer
// (subspace.GammaBackend, selected like grid.BFactorizer's seam):
//
//   - ExactGamma (the default): the reference principal-angle pipeline.
//     Below grid.SparseThreshold buses every float operation matches the
//     uncached subspace.Gamma bitwise; at or above it the
//     multi-accumulator/blocked kernels and the reduced [p; √2·f]
//     representation run under the 1e-9-agreement contract, following the
//     resolved grid backend (-backend dense keeps the bitwise path even on
//     large cases).
//   - SparseGamma: CSC-aware Gram-Schmidt over the reduced rows, skipping
//     structural zeros via topology-fixed column supports. 1e-9 agreement
//     with the exact evaluator.
//   - SketchGamma: the sparse-Gram Cholesky + seeded-Lanczos evaluator
//     (subspace.SketchEvaluator) — no dense basis is formed at all. It
//     carries the documented sketch error bound, is deterministic per
//     seed, and falls back to the exact path automatically whenever it
//     cannot certify the bound; SelectMTD/MaxGamma additionally re-check
//     the winning candidate exactly, so reported γ values stay exact.
type GammaEvaluator struct {
	n       *grid.Network
	backend GammaBackend // resolved: Exact, Sparse or Sketch
	fast    bool         // exact-path kernel family (the grid-backend seam)
	qOld    *subspace.Basis
	basisBk subspace.BasisBackend     // candidate orthonormalizer (exact/sparse)
	sketch  *subspace.SketchEvaluator // non-nil iff backend == SketchGamma
	pool    sync.Pool                 // *gammaWorkspace
}

type gammaWorkspace struct {
	ht     *mat.Dense // candidate Hᵀ, (N-1)×M (or reduced (N-1)×(N+L))
	ws     subspace.Workspace
	xFull  []float64 // expanded reactance buffer, length L
	d      []float64 // sketch: candidate diagonal 1/x_l, length L
	sketch *subspace.SketchSession
}

// NewGammaEvaluator builds an evaluator for the pre-perturbation reactance
// vector xOld (full length-L vector) on the default γ backend (the -gamma
// process default; exact when none is set).
func NewGammaEvaluator(n *grid.Network, xOld []float64) *GammaEvaluator {
	return NewGammaEvaluatorBackend(n, xOld, AutoGamma)
}

// NewGammaEvaluatorBackend is NewGammaEvaluator with an explicit γ-backend
// choice. A sketch construction that cannot certify its contract (a
// rank-deficient x_old Gram matrix) degrades to the exact backend, so the
// returned evaluator is always usable; Backend() reports what actually
// serves.
func NewGammaEvaluatorBackend(n *grid.Network, xOld []float64, gb GammaBackend) *GammaEvaluator {
	gb = subspace.EffectiveGammaBackend(gb)
	// The exact path's kernel family follows the resolved grid backend
	// (including the -backend process default), so a dense-forced run is
	// the historical bitwise path end to end and a sparse-forced run gets
	// the whole fast family — γ and LP always sit on the same side of the
	// contract.
	fast := grid.EffectiveBackend(n, grid.AutoBackend) == grid.SparseBackend
	e := &GammaEvaluator{n: n, backend: gb, fast: fast}

	switch gb {
	case SketchGamma:
		et, g := n.GammaSketchOperands()
		d := make([]float64, n.L())
		invInto(d, xOld)
		sk, err := subspace.NewSketchEvaluator(et, g, d, subspace.SketchConfig{Seed: 1})
		if err != nil {
			e.backend = ExactGamma
		} else {
			e.sketch = sk
		}
		// The exact side below doubles as the sketch's fallback (and the
		// SelectMTD/MaxGamma winner re-check), so it is always prepared.
	case SparseGamma:
		ht := mat.NewDense(n.N()-1, n.GammaAmbient())
		n.MeasurementMatrixTGammaInto(xOld, ht)
		e.basisBk = subspace.NewSparseBasisBackend(ht)
		var ws subspace.Workspace
		ws.Backend = e.basisBk
		e.qOld = ws.BasisT(ht, 0)
	}

	if e.qOld == nil {
		// Exact x_old basis (also the sketch fallback side).
		if fast {
			// The fast path works in the reduced γ-equivalent representation
			// (flow block once, √2-weighted): identical angles from 38% fewer
			// reduction rows — see Network.MeasurementMatrixTGammaInto.
			ht := mat.NewDense(n.N()-1, n.GammaAmbient())
			n.MeasurementMatrixTGammaInto(xOld, ht)
			e.qOld = subspace.ComputeBasisTFast(ht, 0)
		} else {
			ht := mat.NewDense(n.N()-1, n.M())
			n.MeasurementMatrixTInto(xOld, ht)
			e.qOld = subspace.ComputeBasisT(ht, 0)
		}
	}

	e.pool.New = func() any {
		cols := n.M()
		if e.exactReduced() || e.backend == SparseGamma {
			cols = n.GammaAmbient()
		}
		w := &gammaWorkspace{
			ht:    mat.NewDense(n.N()-1, cols),
			xFull: make([]float64, n.L()),
		}
		switch e.backend {
		case SparseGamma:
			w.ws.Backend = e.basisBk
		case SketchGamma:
			w.ws.Fast = e.fast
			w.d = make([]float64, n.L())
			w.sketch = e.sketch.NewSession()
		default:
			w.ws.Fast = e.fast
		}
		return w
	}
	return e
}

// Backend reports the resolved γ backend actually serving this evaluator.
func (e *GammaEvaluator) Backend() GammaBackend { return e.backend }

// exactReduced reports whether the exact path (primary or fallback) works
// in the reduced representation.
func (e *GammaEvaluator) exactReduced() bool { return e.fast }

// invInto fills d with 1/x.
func invInto(d, x []float64) []float64 {
	for i, v := range x {
		d[i] = 1 / v
	}
	return d
}

// Gamma returns γ(H(x_old), H(x)) for a full reactance vector x.
func (e *GammaEvaluator) Gamma(x []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	g := e.gamma(w, x)
	e.pool.Put(w)
	return g
}

// GammaDFACTS returns γ(H(x_old), H(x')) where x' is the network's current
// reactance vector with the D-FACTS branches set to xd (ordered as
// DFACTSIndices). This is the inner-loop form used by the problem-(4)
// search.
func (e *GammaEvaluator) GammaDFACTS(xd []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	e.n.ExpandDFACTSInto(xd, w.xFull)
	g := e.gamma(w, w.xFull)
	e.pool.Put(w)
	return g
}

// GammaExact returns γ through the exact path regardless of the
// evaluator's backend — the re-check SelectMTD/MaxGamma apply to a
// sketch-guided winner, and the reference the agreement tests compare
// against. For exact and sparse evaluators it is the regular evaluation
// (the sparse backend's 1e-9 contract needs no re-check).
func (e *GammaEvaluator) GammaExact(x []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	var g float64
	if e.backend == SketchGamma {
		g = e.exactGamma(w, x)
	} else {
		g = e.gamma(w, x)
	}
	e.pool.Put(w)
	return g
}

// GammaDFACTSExact is GammaExact in the D-FACTS-setting form.
func (e *GammaEvaluator) GammaDFACTSExact(xd []float64) float64 {
	w := e.pool.Get().(*gammaWorkspace)
	e.n.ExpandDFACTSInto(xd, w.xFull)
	var g float64
	if e.backend == SketchGamma {
		g = e.exactGamma(w, w.xFull)
	} else {
		g = e.gamma(w, w.xFull)
	}
	e.pool.Put(w)
	return g
}

func (e *GammaEvaluator) gamma(w *gammaWorkspace, x []float64) float64 {
	switch e.backend {
	case SketchGamma:
		if g, ok := w.sketch.Gamma(invInto(w.d, x)); ok {
			return g
		}
		return e.exactGamma(w, x) // automatic exact fallback
	case SparseGamma:
		e.n.MeasurementMatrixTGammaInto(x, w.ht)
		qNew := w.ws.BasisT(w.ht, 0)
		return w.ws.GammaBases(e.qOld, qNew)
	default:
		return e.exactGamma(w, x)
	}
}

// exactGamma is the reference candidate evaluation (the pre-backend-layer
// path): dense MGS on the bitwise or fast kernel family per the grid seam.
func (e *GammaEvaluator) exactGamma(w *gammaWorkspace, x []float64) float64 {
	saved := w.ws.Backend
	w.ws.Backend = nil // exact path honors ws.Fast
	if e.exactReduced() {
		e.n.MeasurementMatrixTGammaInto(x, w.ht)
	} else {
		e.n.MeasurementMatrixTInto(x, w.ht)
	}
	qNew := w.ws.BasisT(w.ht, 0)
	g := w.ws.GammaBases(e.qOld, qNew)
	w.ws.Backend = saved
	return g
}

// GammaSession is a single-goroutine view of a GammaEvaluator: it owns one
// workspace outright instead of borrowing from the pool per call, giving
// the parallel multi-start workers engine affinity without sync.Pool
// churn. By default γ evaluation carries no cross-call state, so session
// results are identical to the pooled path; CarryWarmStarts opts a sketch
// session into Lanczos warm-start carrying, after which the caller must
// evaluate a deterministic candidate sequence and call ResetWarmStart at
// each sequence boundary (each local-search start) to keep seed determinism
// and worker-count invariance. Not safe for concurrent use.
type GammaSession struct {
	e *GammaEvaluator
	w *gammaWorkspace
}

// NewSession returns a fresh session with its own workspace.
func (e *GammaEvaluator) NewSession() *GammaSession {
	return &GammaSession{e: e, w: e.pool.New().(*gammaWorkspace)}
}

// CarryWarmStarts enables Lanczos warm-start carrying on a sketch-backend
// session (no-op on exact/sparse backends, whose evaluations have no
// iterative state to carry). See subspace.SketchSession.CarryWarmStarts for
// the determinism obligations.
func (s *GammaSession) CarryWarmStarts() {
	if s.w.sketch != nil {
		s.w.sketch.CarryWarmStarts()
	}
}

// ResetWarmStart discards any carried Lanczos warm start, so the session's
// next evaluation is identical to a fresh session's. No-op on exact/sparse
// backends.
func (s *GammaSession) ResetWarmStart() {
	if s.w.sketch != nil {
		s.w.sketch.ResetWarmStart()
	}
}

// Gamma is GammaEvaluator.Gamma on the session's private workspace.
func (s *GammaSession) Gamma(x []float64) float64 { return s.e.gamma(s.w, x) }

// GammaDFACTS is GammaEvaluator.GammaDFACTS on the session's workspace.
func (s *GammaSession) GammaDFACTS(xd []float64) float64 {
	s.e.n.ExpandDFACTSInto(xd, s.w.xFull)
	return s.e.gamma(s.w, s.w.xFull)
}
