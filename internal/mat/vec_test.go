package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Must not overflow for large components.
	big := Norm2([]float64{1e300, 1e300})
	if math.IsInf(big, 0) || math.Abs(big-1e300*math.Sqrt2) > 1e286 {
		t.Fatalf("Norm2 overflow handling wrong: %v", big)
	}
}

func TestNorm1NormInf(t *testing.T) {
	x := []float64{-1, 2, -3}
	if got := Norm1(x); got != 6 {
		t.Errorf("Norm1 = %v, want 6", got)
	}
	if got := NormInf(x); got != 3 {
		t.Errorf("NormInf = %v, want 3", got)
	}
}

func TestVectorArithmetic(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 5}
	if got := AddVec(x, y); !VecEqual(got, []float64{4, 7}, 0) {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec(x, y); !VecEqual(got, []float64{-2, -3}, 0) {
		t.Errorf("SubVec = %v", got)
	}
	if got := ScaleVec(2, x); !VecEqual(got, []float64{2, 4}, 0) {
		t.Errorf("ScaleVec = %v", got)
	}
	z := CopyVec(y)
	AxpyVec(2, x, z)
	if !VecEqual(z, []float64{5, 9}, 0) {
		t.Errorf("AxpyVec = %v", z)
	}
	// CopyVec independence.
	c := CopyVec(x)
	c[0] = 42
	if x[0] != 1 {
		t.Error("CopyVec aliases input")
	}
}

func TestConstructors(t *testing.T) {
	if got := Zeros(3); !VecEqual(got, []float64{0, 0, 0}, 0) {
		t.Errorf("Zeros = %v", got)
	}
	if got := Ones(2); !VecEqual(got, []float64{1, 1}, 0) {
		t.Errorf("Ones = %v", got)
	}
	if got := Constant(2, 7); !VecEqual(got, []float64{7, 7}, 0) {
		t.Errorf("Constant = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	x := []float64{3, -1, 2}
	if MaxVec(x) != 3 || MinVec(x) != -1 || SumVec(x) != 4 {
		t.Errorf("MaxVec/MinVec/SumVec wrong for %v", x)
	}
}

func TestMaxVecPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxVec(nil)
}

func TestVecEqual(t *testing.T) {
	if !VecEqual([]float64{1, 2}, []float64{1.0000001, 2}, 1e-3) {
		t.Error("VecEqual should accept within tolerance")
	}
	if VecEqual([]float64{1}, []float64{1, 2}, 1) {
		t.Error("VecEqual must reject different lengths")
	}
}

// Property: the Cauchy-Schwarz inequality |x·y| <= ||x|| ||y||.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality ||x+y|| <= ||x|| + ||y||.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * math.Exp(float64(r.Intn(10)-5))
			y[i] = r.NormFloat64() * math.Exp(float64(r.Intn(10)-5))
		}
		return Norm2(AddVec(x, y)) <= Norm2(x)+Norm2(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
