package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPDTriplets builds a random symmetric diagonally dominant sparse
// matrix (hence SPD) of order n as triplets, mimicking the structure of a
// susceptance assembly: off-diagonal pairs plus accumulated diagonals.
func randomSPDTriplets(rng *rand.Rand, n, edges int) (is, js []int, vs []float64) {
	diag := make([]float64, n)
	for e := 0; e < edges; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		w := 0.1 + rng.Float64()
		is = append(is, i, j)
		js = append(js, j, i)
		vs = append(vs, -w, -w)
		diag[i] += w
		diag[j] += w
	}
	for i := 0; i < n; i++ {
		is = append(is, i)
		js = append(js, i)
		vs = append(vs, diag[i]+0.5+rng.Float64())
	}
	return is, js, vs
}

func TestCSCFromTripletsSumsDuplicates(t *testing.T) {
	m := NewCSCFromTriplets(2, 2,
		[]int{0, 0, 1, 0}, []int{0, 1, 1, 0}, []float64{1, 2, 3, 4})
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates summed)", m.NNZ())
	}
	d := m.Dense()
	want := NewDenseFrom(2, 2, []float64{5, 2, 0, 3})
	if !Equal(d, want, 0) {
		t.Fatalf("dense mismatch:\n%v\nwant:\n%v", d, want)
	}
	if p := m.Pos(0, 0); p < 0 || m.Values()[p] != 5 {
		t.Fatalf("Pos(0,0) = %d", p)
	}
	if p := m.Pos(1, 0); p != -1 {
		t.Fatalf("Pos(1,0) = %d, want -1", p)
	}
}

func TestMinDegreeOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		adj := make([][]int, n)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			adj[i] = append(adj[i], j)
		}
		p := MinDegreeOrder(n, adj)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestSparseCholMatchesDenseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(60)
		is, js, vs := randomSPDTriplets(rng, n, 3*n)
		a := NewCSCFromTriplets(n, n, is, js, vs)
		chol, err := NewSparseChol(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := chol.SolveInto(make([]float64, n), b)
		want, err := Solve(a.Dense(), b)
		if err != nil {
			t.Fatalf("dense solve: %v", err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
		// Residual check directly against the sparse operator.
		r := a.MulVecInto(make([]float64, n), got)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual %g at %d", trial, r[i]-b[i], i)
			}
		}
	}
}

func TestSparseCholRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	is, js, vs := randomSPDTriplets(rng, n, 3*n)
	a := NewCSCFromTriplets(n, n, is, js, vs)
	chol, err := NewSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern, new values: scale the triplets and rebuild.
	for i := range vs {
		vs[i] *= 2.5
	}
	a2 := NewCSCFromTriplets(n, n, is, js, vs)
	if err := chol.Refactor(a2); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := chol.SolveInto(make([]float64, n), b)
	want, err := Solve(a2.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSparseCholRejectsSingular(t *testing.T) {
	// A graph Laplacian (no grounding diagonal) is singular: the all-ones
	// vector is in its null space — the sparse analogue of an islanded or
	// slack-less susceptance matrix.
	n := 5
	var is, js []int
	var vs []float64
	for i := 0; i < n-1; i++ {
		is = append(is, i, i+1, i, i+1)
		js = append(js, i+1, i, i, i+1)
		vs = append(vs, -1, -1, 1, 1)
	}
	a := NewCSCFromTriplets(n, n, is, js, vs)
	if _, err := NewSparseChol(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSparseCholSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 12
	is, js, vs := randomSPDTriplets(rng, n, 2*n)
	a := NewCSCFromTriplets(n, n, is, js, vs)
	chol, err := NewSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := chol.SolveInto(make([]float64, n), b)
	got := append([]float64(nil), b...)
	chol.SolveInto(got, got) // dst aliases b
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}
