package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{3, 3}, {5, 3}, {10, 4}, {54, 13}, {1, 1}} {
		a := randomDense(rng, shape[0], shape[1])
		qr := ComputeQR(a)
		back := Mul(qr.Q, qr.R)
		if !Equal(back, a, 1e-10) {
			t.Errorf("QR reconstruction failed for %dx%d: max err %g",
				shape[0], shape[1], SubMat(back, a).MaxAbs())
		}
		// Q must have orthonormal columns.
		qtq := Mul(qr.Q.T(), qr.Q)
		if !Equal(qtq, Identity(shape[1]), 1e-10) {
			t.Errorf("QᵀQ != I for %dx%d", shape[0], shape[1])
		}
		// R must be upper triangular.
		for i := 0; i < qr.R.Rows(); i++ {
			for j := 0; j < i; j++ {
				if math.Abs(qr.R.At(i, j)) > 1e-12 {
					t.Errorf("R not upper triangular at (%d,%d): %g", i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

// TestComputeQRWorkerInvariance pins the parallel reflector application
// to the sequential arithmetic: Q and R must be bitwise identical for any
// worker count, on shapes big enough to cross the fan-out threshold.
func TestComputeQRWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{300, 80}, {1123, 299}} {
		a := randomDense(rng, shape[0], shape[1])
		ref := computeQRWorkers(a, 1)
		for _, workers := range []int{2, 3, 8} {
			got := computeQRWorkers(a, workers)
			for i := range ref.Q.data {
				if got.Q.data[i] != ref.Q.data[i] {
					t.Fatalf("%dx%d workers=%d: Q differs at flat index %d",
						shape[0], shape[1], workers, i)
				}
			}
			for i := range ref.R.data {
				if got.R.data[i] != ref.R.data[i] {
					t.Fatalf("%dx%d workers=%d: R differs at flat index %d",
						shape[0], shape[1], workers, i)
				}
			}
		}
	}
}

func TestComputeQRPanicsForWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	ComputeQR(NewDense(2, 3))
}

func TestOrthonormalBasisFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomDense(rng, 8, 3)
	q := OrthonormalBasis(a, 0)
	if q.Cols() != 3 {
		t.Fatalf("basis has %d columns, want 3", q.Cols())
	}
	if !Equal(Mul(q.T(), q), Identity(3), 1e-10) {
		t.Error("basis not orthonormal")
	}
	// Every column of a must be reproducible from the basis: a = Q Qᵀ a.
	proj := Mul(q, Mul(q.T(), a))
	if !Equal(proj, a, 1e-10) {
		t.Error("basis does not span Col(a)")
	}
}

func TestOrthonormalBasisRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Build a 6x4 matrix of rank 2: two independent columns duplicated.
	base := randomDense(rng, 6, 2)
	a := NewDense(6, 4)
	for i := 0; i < 6; i++ {
		a.Set(i, 0, base.At(i, 0))
		a.Set(i, 1, base.At(i, 1))
		a.Set(i, 2, base.At(i, 0)+base.At(i, 1))
		a.Set(i, 3, 2*base.At(i, 0)-base.At(i, 1))
	}
	q := OrthonormalBasis(a, 0)
	if q.Cols() != 2 {
		t.Fatalf("basis has %d columns, want 2", q.Cols())
	}
}

func TestOrthonormalBasisZeroMatrix(t *testing.T) {
	q := OrthonormalBasis(NewDense(4, 3), 0)
	if q.Cols() != 0 {
		t.Fatalf("zero matrix should have empty basis, got %d columns", q.Cols())
	}
}

func TestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomDense(rng, 6, 4)
	if got := Rank(a, 0); got != 4 {
		t.Errorf("random 6x4 rank = %d, want 4", got)
	}
	// Make column 3 a combination of columns 0 and 1.
	for i := 0; i < 6; i++ {
		a.Set(i, 3, a.At(i, 0)-2*a.At(i, 1))
	}
	if got := Rank(a, 0); got != 3 {
		t.Errorf("rank after dependency = %d, want 3", got)
	}
	if got := Rank(NewDense(3, 3), 0); got != 0 {
		t.Errorf("rank of zero matrix = %d, want 0", got)
	}
	// Wide matrices are handled via transpose.
	if got := Rank(randomDense(rng, 2, 5), 0); got != 2 {
		t.Errorf("rank of wide 2x5 = %d, want 2", got)
	}
}

func TestCond2(t *testing.T) {
	d := Diagonal([]float64{10, 1, 0.1})
	if got := Cond2(d); math.Abs(got-100) > 1e-8 {
		t.Errorf("Cond2 = %v, want 100", got)
	}
	if got := Cond2(Identity(4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cond2(I) = %v, want 1", got)
	}
	if got := Cond2(NewDense(3, 2)); !math.IsInf(got, 1) {
		t.Errorf("Cond2(0) = %v, want +Inf", got)
	}
}

// Property: QR of a random tall matrix always satisfies A = QR and QᵀQ = I.
func TestQuickQR(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := n + r.Intn(10)
		a := randomDense(r, m, n)
		qr := ComputeQR(a)
		return Equal(Mul(qr.Q, qr.R), a, 1e-9) &&
			Equal(Mul(qr.Q.T(), qr.Q), Identity(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
