// Package mat implements the linear algebra needed by the MTD
// reproduction: dense matrices, Householder QR, one-sided Jacobi SVD, LU
// solves, rank computation, vector helpers — and, for the ≥57-bus cases, a
// sparse backend (CSC storage, a fill-reducing minimum-degree ordering,
// and an up-looking sparse Cholesky with permuted triangular solves).
//
// The package is deliberately small and dependency-free. Dense matrices
// are row-major; the dense kernels favor simplicity and bitwise-stable
// operation order over blocked/SIMD performance because the experiment
// outputs are reproducibility contracts. The sparse kernels exist because
// the susceptance matrices of the larger IEEE cases are >97% zero: the
// grid package assembles B_r in CSC form once per topology, revalues it
// per reactance candidate, and SparseChol.Refactor + SolveInto replace the
// O(N³) dense inverse in the hot selection loops.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned when matrix dimensions are incompatible with the
// requested operation.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// Dense is a dense row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Use NewDense or NewDenseFrom to
// construct matrices with a shape.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialized r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom returns an r×c matrix backed by a copy of data, which must
// have length r*c and be laid out row-major.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d x %d", len(data), r, c))
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Dense{rows: r, cols: c, data: d}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on its diagonal.
func Diagonal(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d, %d) out of range for %d x %d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return NewDenseFrom(m.rows, m.cols, m.data)
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: column index out of range")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(ErrShape)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j. len(v) must equal Rows.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns aᵀ*x without forming the transpose.
func MulVecT(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// AddMat returns a+b.
func AddMat(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(ErrShape)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// SubMat returns a-b.
func SubMat(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(ErrShape)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// ScaleMat returns s*a.
func ScaleMat(s float64, a *Dense) *Dense {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// HStack returns the horizontal concatenation [a b].
func HStack(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(ErrShape)
	}
	out := NewDense(a.rows, a.cols+b.cols)
	for i := 0; i < a.rows; i++ {
		copy(out.data[i*out.cols:], a.data[i*a.cols:(i+1)*a.cols])
		copy(out.data[i*out.cols+a.cols:], b.data[i*b.cols:(i+1)*b.cols])
	}
	return out
}

// VStack returns the vertical concatenation [a; b].
func VStack(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(ErrShape)
	}
	out := NewDense(a.rows+b.rows, a.cols)
	copy(out.data, a.data)
	copy(out.data[a.rows*a.cols:], b.data)
	return out
}

// HStackVec returns [a v] where v is appended as one extra column.
func HStackVec(a *Dense, v []float64) *Dense {
	if a.rows != len(v) {
		panic(ErrShape)
	}
	out := NewDense(a.rows, a.cols+1)
	for i := 0; i < a.rows; i++ {
		copy(out.data[i*out.cols:], a.data[i*a.cols:(i+1)*a.cols])
		out.data[i*out.cols+a.cols] = v[i]
	}
	return out
}

// Submatrix returns the block of m with rows [r0, r1) and columns [c0, c1).
func (m *Dense) Submatrix(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic("mat: submatrix bounds out of range")
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// DropCol returns a copy of m with column j removed.
func (m *Dense) DropCol(j int) *Dense {
	if j < 0 || j >= m.cols {
		panic("mat: column index out of range")
	}
	out := NewDense(m.rows, m.cols-1)
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		copy(dst, src[:j])
		copy(dst[j:], src[j+1:])
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have the same shape and all entries agree
// within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.5g", m.data[i*m.cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
