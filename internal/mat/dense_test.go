package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDense(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got shape %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseFrom(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseFrom(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("row-major layout wrong: %v", m)
	}
	// The matrix must not alias the input slice.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("NewDenseFrom aliases caller data")
	}
}

func TestNewDenseFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Fatalf("At(0,1) = %v, want 7", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(3)[%d][%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal([]float64{2, 3})
	want := NewDenseFrom(2, 2, []float64{2, 0, 0, 3})
	if !Equal(d, want, 0) {
		t.Fatalf("Diagonal = %v, want %v", d, want)
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	want := NewDenseFrom(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !Equal(mt, want, 0) {
		t.Fatalf("T = %v, want %v", mt, want)
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseFrom(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMulVecT(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVecT(a, []float64{1, 1})
	want := []float64{5, 7, 9}
	if !VecEqual(got, want, 1e-14) {
		t.Fatalf("MulVecT = %v, want %v", got, want)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{4, 3, 2, 1})
	if got := AddMat(a, b); !Equal(got, NewDenseFrom(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Errorf("AddMat wrong: %v", got)
	}
	if got := SubMat(a, b); !Equal(got, NewDenseFrom(2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Errorf("SubMat wrong: %v", got)
	}
	if got := ScaleMat(2, a); !Equal(got, NewDenseFrom(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Errorf("ScaleMat wrong: %v", got)
	}
}

func TestRowColAccessors(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.Row(1); !VecEqual(got, []float64{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); !VecEqual(got, []float64{3, 6}, 0) {
		t.Errorf("Col(2) = %v", got)
	}
	m.SetRow(0, []float64{9, 9, 9})
	if got := m.Row(0); !VecEqual(got, []float64{9, 9, 9}, 0) {
		t.Errorf("SetRow failed: %v", got)
	}
	m.SetCol(0, []float64{7, 8})
	if m.At(0, 0) != 7 || m.At(1, 0) != 8 {
		t.Error("SetCol failed")
	}
	// Row returns a copy, not an alias.
	r := m.Row(0)
	r[0] = -1
	if m.At(0, 0) == -1 {
		t.Error("Row aliases the matrix")
	}
}

func TestStacking(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 1, []float64{5, 6})
	h := HStack(a, b)
	if h.Rows() != 2 || h.Cols() != 3 || h.At(0, 2) != 5 || h.At(1, 2) != 6 {
		t.Errorf("HStack wrong: %v", h)
	}
	c := NewDenseFrom(1, 2, []float64{7, 8})
	v := VStack(a, c)
	if v.Rows() != 3 || v.At(2, 0) != 7 || v.At(2, 1) != 8 {
		t.Errorf("VStack wrong: %v", v)
	}
	hv := HStackVec(a, []float64{9, 10})
	if hv.Cols() != 3 || hv.At(0, 2) != 9 || hv.At(1, 2) != 10 {
		t.Errorf("HStackVec wrong: %v", hv)
	}
}

func TestSubmatrixAndDropCol(t *testing.T) {
	m := NewDenseFrom(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := m.Submatrix(1, 3, 0, 2)
	want := NewDenseFrom(2, 2, []float64{4, 5, 7, 8})
	if !Equal(s, want, 0) {
		t.Errorf("Submatrix = %v, want %v", s, want)
	}
	d := m.DropCol(1)
	wantD := NewDenseFrom(3, 2, []float64{1, 3, 4, 6, 7, 9})
	if !Equal(d, wantD, 0) {
		t.Errorf("DropCol = %v, want %v", d, wantD)
	}
}

func TestNorms(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-14 {
		t.Errorf("FrobNorm = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(NewDense(2, 2), NewDense(2, 3), 1) {
		t.Error("Equal must be false for different shapes")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestQuickTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return Equal(left, right, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		c := randomDense(rng, k, n)
		left := Mul(a, AddMat(b, c))
		right := AddMat(Mul(a, b), Mul(a, c))
		return Equal(left, right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestIntoVariantsMatchAllocating checks the workspace variants against
// their allocating counterparts bitwise.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := NewDense(7, 5)
	b := NewDense(5, 6)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 6; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	x5 := make([]float64, 5)
	x7 := make([]float64, 7)
	for i := range x5 {
		x5[i] = rng.NormFloat64()
	}
	for i := range x7 {
		x7[i] = rng.NormFloat64()
	}

	if got, want := MulInto(NewDense(7, 6), a, b), Mul(a, b); !Equal(got, want, 0) {
		t.Fatal("MulInto differs from Mul")
	}
	gotV := MulVecInto(make([]float64, 7), a, x5)
	for i, v := range MulVec(a, x5) {
		if gotV[i] != v {
			t.Fatal("MulVecInto differs from MulVec")
		}
	}
	gotT := MulVecTInto(make([]float64, 5), a, x7)
	for i, v := range MulVecT(a, x7) {
		if gotT[i] != v {
			t.Fatal("MulVecTInto differs from MulVecT")
		}
	}
	if got := TransposeInto(NewDense(5, 7), a); !Equal(got, a.T(), 0) {
		t.Fatal("TransposeInto differs from T")
	}

	// RowView shares backing storage.
	rv := a.RowView(2)
	rv[0] = 42
	if a.At(2, 0) != 42 {
		t.Fatal("RowView does not alias the matrix")
	}
}
