package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	_, err := Solve(a, []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	a := NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{3, 2}, 1e-14) {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestDet(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	f, err := ComputeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got+2) > 1e-12 {
		t.Fatalf("Det = %v, want -2", got)
	}
	// Determinant of a permutation-needing matrix.
	b := NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	fb, err := ComputeLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.Det(); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Det(swap) = %v, want -1", got)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomDense(rng, 5, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, inv), Identity(5), 1e-9) {
		t.Error("A * A^-1 != I")
	}
	if !Equal(Mul(inv, a), Identity(5), 1e-9) {
		t.Error("A^-1 * A != I")
	}
}

func TestSolveMat(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{2, 0, 0, 4})
	b := NewDenseFrom(2, 2, []float64{2, 4, 8, 12})
	x, err := SolveMat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseFrom(2, 2, []float64{1, 2, 2, 3})
	if !Equal(x, want, 1e-12) {
		t.Fatalf("SolveMat = %v, want %v", x, want)
	}
}

func TestComputeLUPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	if _, err := ComputeLU(NewDense(2, 3)); err != nil {
		t.Fatal(err)
	}
}

// Property: for random well-conditioned systems, the solve residual is tiny.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomDense(r, n, n)
		// Diagonal dominance guarantees invertibility and conditioning.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := SubVec(MulVec(a, x), b)
		return Norm2(res) < 1e-10*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: det(AB) = det(A)det(B).
func TestQuickDetProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		fa, errA := ComputeLU(a)
		fb, errB := ComputeLU(b)
		fab, errAB := ComputeLU(Mul(a, b))
		if errA != nil || errB != nil || errAB != nil {
			return true // singular draws are skipped
		}
		da, db, dab := fa.Det(), fb.Det(), fab.Det()
		return math.Abs(dab-da*db) < 1e-8*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLUResetReuse refactors a sequence of matrices through one LU and
// compares against fresh factorizations.
func TestLUResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var f LU
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		if err := f.Reset(a); err != nil {
			continue // singular draw
		}
		fresh, err := ComputeLU(a)
		if err != nil {
			t.Fatalf("trial %d: fresh LU failed after Reset succeeded", trial)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := fresh.Solve(b)
		got := make([]float64, n)
		f.SolveInto(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
