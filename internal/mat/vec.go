package mat

import "math"

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow/underflow for extreme inputs.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the largest absolute value in x.
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// AddVec returns x+y as a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x-y as a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// ScaleVec returns s*x as a new slice.
func ScaleVec(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// AxpyVec adds alpha*x to y in place.
func AxpyVec(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Ones returns a vector of n ones.
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Constant returns a vector of n copies of v.
func Constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// MaxVec returns the maximum element of x; it panics on an empty slice.
func MaxVec(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: MaxVec of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinVec returns the minimum element of x; it panics on an empty slice.
func MinVec(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: MinVec of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// SumVec returns the sum of the elements of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// VecEqual reports whether x and y have equal length and agree within tol
// elementwise.
func VecEqual(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}
