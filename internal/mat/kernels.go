package mat

// Multi-accumulator reduction kernels for the large-case (≥ 57-bus) hot
// paths. The historical Dot/Norm2/AxpyVec loops carry one serial
// floating-point dependency chain, which makes them latency-bound; these
// variants split the reduction across four independent accumulators so the
// CPU can overlap the multiply-adds. Splitting the chain changes the
// summation order, so the results differ from the serial kernels in the
// last bits — callers on the sub-threshold dense path, whose experiment
// outputs are bitwise-reproducibility contracts, must keep using Dot,
// Norm2 and AxpyVec. The large-case path carries a 1e-9-agreement contract
// instead (see PERF.md), which these kernels satisfy with room to spare.

// DotFast returns the inner product of x and y using eight accumulators
// (measured on the CI-class Xeon: ~1.45× over the serial loop at the
// γ-kernel vector lengths; wider unrolls stopped paying).
func DotFast(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	for len(x) >= 8 {
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		s4 += x[4] * y[4]
		s5 += x[5] * y[5]
		s6 += x[6] * y[6]
		s7 += x[7] * y[7]
		x = x[8:]
		y = y[8:]
	}
	for i, v := range x {
		s0 += v * y[i]
	}
	return ((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))
}

// Norm2SqFast returns the squared Euclidean norm of x using eight
// accumulators. Unlike Norm2 it does not rescale against overflow or
// underflow: it is meant for the O(1)-magnitude vectors of the
// measurement-matrix kernels.
func Norm2SqFast(x []float64) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	for len(x) >= 8 {
		s0 += x[0] * x[0]
		s1 += x[1] * x[1]
		s2 += x[2] * x[2]
		s3 += x[3] * x[3]
		s4 += x[4] * x[4]
		s5 += x[5] * x[5]
		s6 += x[6] * x[6]
		s7 += x[7] * x[7]
		x = x[8:]
	}
	for _, v := range x {
		s0 += v * v
	}
	return ((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))
}

// AxpyFast adds alpha*x to y in place with a four-way unrolled loop. The
// stores are independent, so the unroll exists to amortize loop overhead
// and keep the load/store pipeline full rather than to break a dependency
// chain; the element results are identical to AxpyVec (each y[i] is
// updated by exactly one fused expression), but it is grouped with the
// fast kernels because callers select the whole family together.
func AxpyFast(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for len(x) >= 4 {
		y[0] += alpha * x[0]
		y[1] += alpha * x[1]
		y[2] += alpha * x[2]
		y[3] += alpha * x[3]
		x = x[4:]
		y = y[4:]
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// dot3Fast returns (x·x, y·y, x·y) in one fused pass with two accumulators
// per product — the Gram entries of a Jacobi column pair.
func dot3Fast(x, y []float64) (xx, yy, xy float64) {
	var xx0, xx1, yy0, yy1, xy0, xy1 float64
	for len(x) >= 2 {
		a0, a1 := x[0], x[1]
		b0, b1 := y[0], y[1]
		xx0 += a0 * a0
		xx1 += a1 * a1
		yy0 += b0 * b0
		yy1 += b1 * b1
		xy0 += a0 * b0
		xy1 += a1 * b1
		x = x[2:]
		y = y[2:]
	}
	if len(x) == 1 {
		xx0 += x[0] * x[0]
		yy0 += y[0] * y[0]
		xy0 += x[0] * y[0]
	}
	return xx0 + xx1, yy0 + yy1, xy0 + xy1
}

// rotateFast applies the Jacobi rotation (c, s) to the column pair (x, y)
// in place with a two-way unrolled loop.
func rotateFast(x, y []float64, c, s float64) {
	for len(x) >= 2 {
		x0, x1 := x[0], x[1]
		y0, y1 := y[0], y[1]
		x[0] = c*x0 - s*y0
		y[0] = s*x0 + c*y0
		x[1] = c*x1 - s*y1
		y[1] = s*x1 + c*y1
		x = x[2:]
		y = y[2:]
	}
	if len(x) == 1 {
		x0, y0 := x[0], y[0]
		x[0] = c*x0 - s*y0
		y[0] = s*x0 + c*y0
	}
}
