package mat

// In-place and workspace variants of the core operations. The hot loops of
// the MTD selection search evaluate thousands of candidates; these variants
// let callers preallocate every buffer once and reuse it per candidate,
// eliminating the per-evaluation heap traffic of the allocating API. Each
// function performs exactly the same floating-point operations in the same
// order as its allocating counterpart, so results are bitwise identical.

// Zero clears every entry of m.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// CopyFrom overwrites m with the entries of a. Shapes must match.
func (m *Dense) CopyFrom(a *Dense) {
	if m.rows != a.rows || m.cols != a.cols {
		panic(ErrShape)
	}
	copy(m.data, a.data)
}

// RowView returns row i of m as a slice sharing m's backing array. Writes
// through the slice mutate the matrix.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RawData returns the row-major backing slice of m. It is intended for
// tight loops that have already validated shapes.
func (m *Dense) RawData() []float64 { return m.data }

// ReuseAs reshapes m to r×c, zeroing the entries. The backing array is
// reused when it is large enough, so hot loops whose matrix dimensions
// drift (the revised-simplex working matrix grows and shrinks by one
// column per pivot) do not reallocate at every step.
func (m *Dense) ReuseAs(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	if cap(m.data) < r*c {
		m.data = make([]float64, r*c)
	} else {
		m.data = m.data[:r*c]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = r, c
	return m
}

// NewReusableDense returns an r×c matrix like NewDense; it exists to make
// workspace-construction sites self-documenting.
func NewReusableDense(r, c int) *Dense { return NewDense(r, c) }

// MulInto computes a*b into dst and returns dst. dst must be a.Rows()×
// b.Cols() and must not alias a or b. The accumulation order matches Mul,
// so the result is bitwise identical.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MulVecInto computes a*x into dst (length a.Rows()) and returns dst.
func MulVecInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(ErrShape)
	}
	if len(dst) != a.rows {
		panic(ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecTInto computes aᵀ*x into dst (length a.Cols()) without forming the
// transpose, and returns dst.
func MulVecTInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(ErrShape)
	}
	if len(dst) != a.cols {
		panic(ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
	return dst
}

// TransposeInto writes aᵀ into dst (which must be a.Cols()×a.Rows()) and
// returns dst.
func TransposeInto(dst, a *Dense) *Dense {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[j*dst.cols+i] = a.data[i*a.cols+j]
		}
	}
	return dst
}
