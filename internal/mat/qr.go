package mat

import "math"

// QR holds the thin QR factorization of an m×n matrix A with m >= n:
// A = Q*R where Q is m×n with orthonormal columns and R is n×n upper
// triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// ComputeQR computes the thin QR factorization of a using Householder
// reflections. It requires Rows >= Cols.
func ComputeQR(a *Dense) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: ComputeQR requires rows >= cols")
	}
	// Work on a copy; accumulate the Householder vectors in-place below the
	// diagonal and the R factor on and above it.
	r := a.Clone()
	betas := make([]float64, n)
	vs := make([][]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		x := make([]float64, m-k)
		for i := k; i < m; i++ {
			x[i-k] = r.data[i*n+k]
		}
		alpha := Norm2(x)
		if x[0] > 0 {
			alpha = -alpha
		}
		v := CopyVec(x)
		v[0] -= alpha
		vnorm := Norm2(v)
		var beta float64
		if vnorm > 0 {
			for i := range v {
				v[i] /= vnorm
			}
			beta = 2
		}
		betas[k] = beta
		vs[k] = v

		if beta != 0 {
			// Apply the reflector to the trailing block r[k:m, k:n].
			for j := k; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += v[i-k] * r.data[i*n+j]
				}
				s *= beta
				for i := k; i < m; i++ {
					r.data[i*n+j] -= s * v[i-k]
				}
			}
		}
	}

	// Extract R (upper triangular n×n).
	rr := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.data[i*n+j] = r.data[i*n+j]
		}
	}

	// Form thin Q by applying the reflectors to the first n columns of I.
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.data[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		v, beta := vs[k], betas[k]
		if beta == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * q.data[i*n+j]
			}
			s *= beta
			for i := k; i < m; i++ {
				q.data[i*n+j] -= s * v[i-k]
			}
		}
	}
	return &QR{Q: q, R: rr}
}

// OrthonormalBasis returns an orthonormal basis for the column space of a,
// as the columns of the returned matrix. Columns of a whose residual after
// projection is below tol times the largest column norm are dropped, so the
// result has exactly rank(a) columns. If tol <= 0 a default of 1e-12 is
// used.
func OrthonormalBasis(a *Dense, tol float64) *Dense {
	if tol <= 0 {
		tol = 1e-12
	}
	m := a.rows
	var basis [][]float64
	// Scale detection threshold by the largest column norm.
	var maxNorm float64
	for j := 0; j < a.cols; j++ {
		if n := Norm2(a.Col(j)); n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm == 0 {
		return NewDense(m, 0)
	}
	thresh := tol * maxNorm
	for j := 0; j < a.cols; j++ {
		v := a.Col(j)
		// Twice-applied modified Gram-Schmidt for robustness.
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				AxpyVec(-Dot(b, v), b, v)
			}
		}
		if n := Norm2(v); n > thresh {
			for i := range v {
				v[i] /= n
			}
			basis = append(basis, v)
		}
	}
	out := NewDense(m, len(basis))
	for j, b := range basis {
		out.SetCol(j, b)
	}
	return out
}

// Rank returns the numerical rank of a: the number of singular values
// exceeding tol times the largest singular value. If tol <= 0 a default of
// 1e-10 is used.
func Rank(a *Dense, tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	work := a
	if a.rows < a.cols {
		work = a.T()
	}
	sv := SingularValues(work)
	if len(sv) == 0 {
		return 0
	}
	smax := sv[0]
	for _, s := range sv[1:] {
		if s > smax {
			smax = s
		}
	}
	if smax == 0 {
		return 0
	}
	r := 0
	for _, s := range sv {
		if s > tol*smax {
			r++
		}
	}
	return r
}

// Cond2 returns the 2-norm condition number of a (ratio of extreme singular
// values). It returns +Inf for a rank-deficient matrix.
func Cond2(a *Dense) float64 {
	work := a
	if a.rows < a.cols {
		work = a.T()
	}
	sv := SingularValues(work)
	if len(sv) == 0 {
		return 0
	}
	mx, mn := sv[0], sv[0]
	for _, s := range sv {
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}
