package mat

import (
	"math"
	"runtime"
	"sync"
)

// QR holds the thin QR factorization of an m×n matrix A with m >= n:
// A = Q*R where Q is m×n with orthonormal columns and R is n×n upper
// triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// qrApplyReflector applies the Householder reflector (v, beta) rooted at
// row k to columns [jlo, jhi) of the m×n row-major block data: for each
// column, s = β·vᵀcol followed by col -= s·v. Column updates touch only
// their own column, so disjoint ranges may run concurrently with results
// bitwise identical to a single sequential sweep — each column sees
// exactly the same ascending-index accumulation either way.
func qrApplyReflector(v []float64, beta float64, data []float64, m, n, k, jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		var s float64
		for i := k; i < m; i++ {
			s += v[i-k] * data[i*n+j]
		}
		s *= beta
		for i := k; i < m; i++ {
			data[i*n+j] -= s * v[i-k]
		}
	}
}

// qrParallelFlops is the per-reflector work (rows × cols of the trailing
// block) below which the application stays on the calling goroutine. Small
// factorizations — everything the bitwise dense path touches — never pay
// goroutine overhead and keep their historical single-threaded execution;
// large ones (the 1100×299 ieee300 estimator build) fan the columns out.
const qrParallelFlops = 1 << 15

// qrApply routes one reflector application, splitting the columns across
// workers when the block is large enough to amortize the barrier.
func qrApply(v []float64, beta float64, data []float64, m, n, k, jlo, jhi, workers int) {
	cols := jhi - jlo
	if workers <= 1 || cols < 2*workers || (m-k)*cols < qrParallelFlops {
		qrApplyReflector(v, beta, data, m, n, k, jlo, jhi)
		return
	}
	chunk := (cols + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := jlo; lo < jhi; lo += chunk {
		hi := lo + chunk
		if hi > jhi {
			hi = jhi
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			qrApplyReflector(v, beta, data, m, n, k, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ComputeQR computes the thin QR factorization of a using Householder
// reflections. It requires Rows >= Cols. Reflector applications fan out
// across columns on large inputs; outputs are bitwise independent of the
// worker count (see qrApplyReflector).
func ComputeQR(a *Dense) *QR {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	return computeQRWorkers(a, workers)
}

// computeQRWorkers is ComputeQR with an explicit worker count — the seam
// the bitwise worker-invariance test drives directly.
func computeQRWorkers(a *Dense, workers int) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: ComputeQR requires rows >= cols")
	}
	// Work on a copy; accumulate the Householder vectors in-place below the
	// diagonal and the R factor on and above it.
	r := a.Clone()
	betas := make([]float64, n)
	vs := make([][]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		x := make([]float64, m-k)
		for i := k; i < m; i++ {
			x[i-k] = r.data[i*n+k]
		}
		alpha := Norm2(x)
		if x[0] > 0 {
			alpha = -alpha
		}
		v := CopyVec(x)
		v[0] -= alpha
		vnorm := Norm2(v)
		var beta float64
		if vnorm > 0 {
			for i := range v {
				v[i] /= vnorm
			}
			beta = 2
		}
		betas[k] = beta
		vs[k] = v

		if beta != 0 {
			// Apply the reflector to the trailing block r[k:m, k:n].
			qrApply(v, beta, r.data, m, n, k, k, n, workers)
		}
	}

	// Extract R (upper triangular n×n).
	rr := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.data[i*n+j] = r.data[i*n+j]
		}
	}

	// Form thin Q by applying the reflectors to the first n columns of I.
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.data[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		v, beta := vs[k], betas[k]
		if beta == 0 {
			continue
		}
		qrApply(v, beta, q.data, m, n, k, 0, n, workers)
	}
	return &QR{Q: q, R: rr}
}

// OrthonormalBasis returns an orthonormal basis for the column space of a,
// as the columns of the returned matrix. Columns of a whose residual after
// projection is below tol times the largest column norm are dropped, so the
// result has exactly rank(a) columns. If tol <= 0 a default of 1e-12 is
// used.
func OrthonormalBasis(a *Dense, tol float64) *Dense {
	if tol <= 0 {
		tol = 1e-12
	}
	m := a.rows
	var basis [][]float64
	// Scale detection threshold by the largest column norm.
	var maxNorm float64
	for j := 0; j < a.cols; j++ {
		if n := Norm2(a.Col(j)); n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm == 0 {
		return NewDense(m, 0)
	}
	thresh := tol * maxNorm
	for j := 0; j < a.cols; j++ {
		v := a.Col(j)
		// Twice-applied modified Gram-Schmidt for robustness.
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				AxpyVec(-Dot(b, v), b, v)
			}
		}
		if n := Norm2(v); n > thresh {
			for i := range v {
				v[i] /= n
			}
			basis = append(basis, v)
		}
	}
	out := NewDense(m, len(basis))
	for j, b := range basis {
		out.SetCol(j, b)
	}
	return out
}

// Rank returns the numerical rank of a: the number of singular values
// exceeding tol times the largest singular value. If tol <= 0 a default of
// 1e-10 is used.
func Rank(a *Dense, tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	work := a
	if a.rows < a.cols {
		work = a.T()
	}
	sv := SingularValues(work)
	if len(sv) == 0 {
		return 0
	}
	smax := sv[0]
	for _, s := range sv[1:] {
		if s > smax {
			smax = s
		}
	}
	if smax == 0 {
		return 0
	}
	r := 0
	for _, s := range sv {
		if s > tol*smax {
			r++
		}
	}
	return r
}

// Cond2 returns the 2-norm condition number of a (ratio of extreme singular
// values). It returns +Inf for a rank-deficient matrix.
func Cond2(a *Dense) float64 {
	work := a
	if a.rows < a.cols {
		work = a.T()
	}
	sv := SingularValues(work)
	if len(sv) == 0 {
		return 0
	}
	mx, mn := sv[0], sv[0]
	for _, s := range sv {
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}
