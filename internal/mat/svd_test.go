package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestComputeSVDKnown(t *testing.T) {
	// diag(3, 2, 1) has singular values 3, 2, 1.
	a := Diagonal([]float64{1, 3, 2})
	sv := SingularValues(a)
	want := []float64{3, 2, 1}
	if !VecEqual(sv, want, 1e-12) {
		t.Fatalf("singular values = %v, want %v", sv, want)
	}
}

func TestComputeSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, shape := range [][2]int{{4, 4}, {6, 3}, {20, 13}, {54, 13}} {
		a := randomDense(rng, shape[0], shape[1])
		svd := ComputeSVD(a)
		// A = U S Vᵀ
		back := Mul(svd.U, Mul(Diagonal(svd.S), svd.V.T()))
		if !Equal(back, a, 1e-9) {
			t.Errorf("SVD reconstruction failed for %dx%d: err %g",
				shape[0], shape[1], SubMat(back, a).MaxAbs())
		}
		// Orthonormality.
		if !Equal(Mul(svd.U.T(), svd.U), Identity(shape[1]), 1e-9) {
			t.Errorf("UᵀU != I for %dx%d", shape[0], shape[1])
		}
		if !Equal(Mul(svd.V.T(), svd.V), Identity(shape[1]), 1e-9) {
			t.Errorf("VᵀV != I for %dx%d", shape[0], shape[1])
		}
		// Descending order, nonnegative.
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(svd.S))) {
			t.Errorf("singular values not sorted: %v", svd.S)
		}
		for _, s := range svd.S {
			if s < 0 {
				t.Errorf("negative singular value %v", s)
			}
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := randomDense(rng, 8, 2)
	a := NewDense(8, 3)
	for i := 0; i < 8; i++ {
		a.Set(i, 0, base.At(i, 0))
		a.Set(i, 1, base.At(i, 1))
		a.Set(i, 2, base.At(i, 0)-base.At(i, 1))
	}
	sv := SingularValues(a)
	if sv[2] > 1e-10*sv[0] {
		t.Errorf("expected third singular value ~0, got %v (largest %v)", sv[2], sv[0])
	}
}

func TestSVDSingularValuesMatchEigenvalues(t *testing.T) {
	// For A = [[2, 0], [0, -5]], singular values are 5 and 2.
	a := NewDenseFrom(2, 2, []float64{2, 0, 0, -5})
	sv := SingularValues(a)
	if !VecEqual(sv, []float64{5, 2}, 1e-12) {
		t.Fatalf("singular values = %v, want [5 2]", sv)
	}
}

func TestSingularValuesEmpty(t *testing.T) {
	if sv := SingularValues(NewDense(3, 0)); len(sv) != 0 {
		t.Fatalf("expected no singular values, got %v", sv)
	}
}

func TestSVDPanicsForWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	ComputeSVD(NewDense(2, 5))
}

// Property: the Frobenius norm equals the root-sum-square of singular values.
func TestQuickSVDFrobenius(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := n + r.Intn(8)
		a := randomDense(r, m, n)
		sv := SingularValues(a)
		var ss float64
		for _, s := range sv {
			ss += s * s
		}
		return math.Abs(math.Sqrt(ss)-a.FrobNorm()) < 1e-9*(1+a.FrobNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: singular values are invariant under orthogonal column mixing
// (multiplying on the right by a rotation).
func TestQuickSVDRotationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(6)
		a := randomDense(r, m, 2)
		theta := r.Float64() * 2 * math.Pi
		c, s := math.Cos(theta), math.Sin(theta)
		rot := NewDenseFrom(2, 2, []float64{c, -s, s, c})
		sv1 := SingularValues(a)
		sv2 := SingularValues(Mul(a, rot))
		return VecEqual(sv1, sv2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSVDWorkspaceMatchesComputeSVD: the singular-value-only kernel must
// reproduce ComputeSVD's values bitwise — it performs the same rotation
// sequence, only skipping the V accumulation and output assembly.
func TestSVDWorkspaceMatchesComputeSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ws SVDWorkspace
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(20)
		n := 1 + rng.Intn(m)
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		want := ComputeSVD(a).S
		got := ws.SingularValues(a)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d singular values, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sv[%d] = %v, want %v (diff %g)", trial, i, got[i], want[i], got[i]-want[i])
			}
		}
	}
}

// TestSVDWorkspaceNearOrthogonal exercises the kernel on the cross-Gram
// shape the γ engine feeds it (near-orthogonal square matrices).
func TestSVDWorkspaceNearOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := NewDense(13, 13)
	for i := 0; i < 13; i++ {
		for j := 0; j < 13; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	q := OrthonormalBasis(a, 0)
	var ws SVDWorkspace
	want := ComputeSVD(q).S
	got := ws.SingularValues(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
