package mat

import "math"

// SparseLU is a sparse LU factorization with partial pivoting: P·A = L·U
// with L unit lower triangular and U upper triangular, both stored in
// compressed-column form. It factors with the left-looking Gilbert–Peierls
// algorithm — each column's fill pattern is discovered by a depth-first
// reachability pass over the partially built L, so the factorization does
// work proportional to the fill it produces instead of the dense n³ sweep.
// The pivot of each column is its largest eliminated entry (partial
// pivoting by magnitude, like the dense LU); a column with no nonzero
// pivot candidate returns ErrSingular, and the revised solver then falls
// back to the dense factorization.
//
// The eta-file machinery in the LP layer composes with either working
// factorization unchanged: SolveInto and SolveTransposeInto have the same
// contract as the dense LU's, so B₀ may be held by whichever factor the
// density gate picked while the product-form updates stack on top.
//
// A SparseLU is not safe for concurrent use. Reset reuses the receiver's
// buffers, so hot loops can refactor without allocating once the pattern
// size stabilizes.
type SparseLU struct {
	n int
	// L: unit lower triangular, diagonal implicit, row indices in pivot
	// position space after Reset finishes.
	lp []int
	li []int
	lx []float64
	// U: upper triangular in position space, diagonal entry stored last in
	// each column.
	up []int
	ui []int
	ux []float64
	// Row permutation: pinv[original row] = pivot position, perm inverse.
	pinv, perm []int
	// Factor/solve scratch.
	x     []float64
	work  []float64
	stack []int
	pstk  []int
	topo  []int
	mark  []bool
}

// ComputeSparseLU factors the square matrix a. It returns ErrSingular when
// a column has no usable pivot.
func ComputeSparseLU(a *Dense) (*SparseLU, error) {
	f := &SparseLU{}
	if err := f.Reset(a); err != nil {
		return nil, err
	}
	return f, nil
}

// NNZ returns the number of stored factor entries (L strictly-lower plus
// U including diagonals) — the fill the factorization actually produced.
func (f *SparseLU) NNZ() int { return len(f.lx) + len(f.ux) }

// Reset refactors the receiver against a new square matrix, reusing the
// existing buffers when possible. On error the receiver must not be used
// for solves.
func (f *SparseLU) Reset(a *Dense) error {
	if a.rows != a.cols {
		panic("mat: ComputeSparseLU requires a square matrix")
	}
	n := a.rows
	f.n = n
	f.lp = growIntTo(f.lp, n+1)
	f.up = growIntTo(f.up, n+1)
	f.pinv = growIntTo(f.pinv, n)
	f.perm = growIntTo(f.perm, n)
	f.x = growFTo(f.x, n)
	f.stack = growIntTo(f.stack, n)
	f.pstk = growIntTo(f.pstk, n)
	f.topo = growIntTo(f.topo, n)
	if cap(f.mark) < n {
		f.mark = make([]bool, n)
	}
	f.mark = f.mark[:n]
	f.li = f.li[:0]
	f.lx = f.lx[:0]
	f.ui = f.ui[:0]
	f.ux = f.ux[:0]
	for i := 0; i < n; i++ {
		f.pinv[i] = -1
		f.x[i] = 0
		f.mark[i] = false
	}
	f.lp[0], f.up[0] = 0, 0

	for j := 0; j < n; j++ {
		// Symbolic: the nonzero pattern of L⁻¹·a_j is the set of rows
		// reachable from a_j's pattern through the columns of L already
		// built (a row that has been eliminated propagates into its L
		// column's rows). Depth-first search records the rows in
		// topological order so the numeric pass can eliminate in
		// dependency order.
		top := n
		for i := 0; i < n; i++ {
			if a.data[i*a.cols+j] != 0 && !f.mark[i] {
				top = f.reach(i, top)
			}
		}
		// Numeric left-looking pass: scatter a_j, then eliminate the
		// already-pivotal rows in topological order.
		for i := 0; i < n; i++ {
			if v := a.data[i*a.cols+j]; v != 0 {
				f.x[i] = v
			}
		}
		for p := top; p < n; p++ {
			i := f.topo[p]
			jc := f.pinv[i]
			if jc < 0 {
				continue // not pivotal yet: a candidate row, nothing to eliminate
			}
			xi := f.x[i]
			if xi == 0 {
				continue
			}
			for q := f.lp[jc]; q < f.lp[jc+1]; q++ {
				f.x[f.li[q]] -= f.lx[q] * xi
			}
		}
		// Pivot: the largest remaining (non-pivotal) entry in the column.
		ipiv, maxAbs := -1, 0.0
		for p := top; p < n; p++ {
			i := f.topo[p]
			if f.pinv[i] >= 0 {
				continue
			}
			if v := math.Abs(f.x[i]); v > maxAbs {
				maxAbs, ipiv = v, i
			}
		}
		if ipiv < 0 || maxAbs == 0 {
			f.clearColumn(top, n)
			return ErrSingular
		}
		pivVal := f.x[ipiv]
		// Emit U's column j: the eliminated rows (in their pivot
		// positions), diagonal last.
		for p := top; p < n; p++ {
			i := f.topo[p]
			if f.pinv[i] < 0 {
				continue
			}
			if v := f.x[i]; v != 0 {
				f.ui = append(f.ui, f.pinv[i])
				f.ux = append(f.ux, v)
			}
		}
		f.ui = append(f.ui, j)
		f.ux = append(f.ux, pivVal)
		f.up[j+1] = len(f.ux)
		// Emit L's column j: the remaining candidate rows scaled by the
		// pivot. Row indices stay in original numbering until the final
		// renumbering below (their positions are not assigned yet).
		f.pinv[ipiv] = j
		for p := top; p < n; p++ {
			i := f.topo[p]
			if f.pinv[i] >= 0 && i != ipiv {
				continue
			}
			if i != ipiv {
				if v := f.x[i]; v != 0 {
					f.li = append(f.li, i)
					f.lx = append(f.lx, v/pivVal)
				}
			}
		}
		f.lp[j+1] = len(f.lx)
		f.clearColumn(top, n)
	}
	// Renumber L's row indices into pivot position space and derive the
	// forward permutation.
	for q := range f.li {
		f.li[q] = f.pinv[f.li[q]]
	}
	for i := 0; i < n; i++ {
		f.perm[f.pinv[i]] = i
	}
	f.work = growFTo(f.work, n)
	return nil
}

// reach runs the depth-first search from row i over the partially built L,
// pushing finished rows onto topo[top-1:] in topological order. Returns
// the new top.
func (f *SparseLU) reach(i, top int) int {
	head := 0
	f.stack[0] = i
	f.pstk[0] = -1 // -1: node not yet expanded
	for head >= 0 {
		i := f.stack[head]
		jc := f.pinv[i]
		var q int
		if f.pstk[head] < 0 {
			f.mark[i] = true
			if jc >= 0 {
				q = f.lp[jc]
			} else {
				q = 0
			}
		} else {
			q = f.pstk[head]
		}
		done := true
		if jc >= 0 {
			for ; q < f.lp[jc+1]; q++ {
				child := f.li[q]
				if !f.mark[child] {
					f.pstk[head] = q + 1
					head++
					f.stack[head] = child
					f.pstk[head] = -1
					done = false
					break
				}
			}
		}
		if done {
			head--
			top--
			f.topo[top] = i
		}
	}
	return top
}

// clearColumn zeroes the scratch entries and marks touched by the current
// column's pattern.
func (f *SparseLU) clearColumn(top, n int) {
	for p := top; p < n; p++ {
		i := f.topo[p]
		f.x[i] = 0
		f.mark[i] = false
	}
}

// SolveInto writes the solution of A·x = b into dst and returns it. dst
// must not alias b.
func (f *SparseLU) SolveInto(dst, b []float64) []float64 {
	n := f.n
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	// dst = P·b, then forward substitution with unit-lower L
	// (column-oriented: finished components propagate down their column).
	for i := 0; i < n; i++ {
		dst[f.pinv[i]] = b[i]
	}
	for j := 0; j < n; j++ {
		xj := dst[j]
		if xj == 0 {
			continue
		}
		for q := f.lp[j]; q < f.lp[j+1]; q++ {
			dst[f.li[q]] -= f.lx[q] * xj
		}
	}
	// Back substitution with U (diagonal stored last in each column).
	for j := n - 1; j >= 0; j-- {
		last := f.up[j+1] - 1
		xj := dst[j] / f.ux[last]
		dst[j] = xj
		if xj == 0 {
			continue
		}
		for q := f.up[j]; q < last; q++ {
			dst[f.ui[q]] -= f.ux[q] * xj
		}
	}
	return dst
}

// SolveTransposeInto writes the solution of Aᵀ·x = b into dst and returns
// it. dst must not alias b. With P·A = L·U the transposed system reads
// Uᵀ·(Lᵀ·(P·x)) = b: a forward substitution with Uᵀ, a back substitution
// with the unit-diagonal Lᵀ, then the inverse row permutation.
func (f *SparseLU) SolveTransposeInto(dst, b []float64) []float64 {
	n := f.n
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	z := f.work[:n]
	// Forward with Uᵀ: z[j] = (b[j] − Σ_{i<j} U[i][j]·z[i]) / U[j][j],
	// using U's column j directly.
	for j := 0; j < n; j++ {
		s := b[j]
		last := f.up[j+1] - 1
		for q := f.up[j]; q < last; q++ {
			s -= f.ux[q] * z[f.ui[q]]
		}
		z[j] = s / f.ux[last]
	}
	// Back with Lᵀ (unit diagonal): z[j] −= Σ_{i>j} L[i][j]·z[i], using
	// L's column j directly.
	for j := n - 2; j >= 0; j-- {
		var s float64
		for q := f.lp[j]; q < f.lp[j+1]; q++ {
			s += f.lx[q] * z[f.li[q]]
		}
		z[j] -= s
	}
	// x = Pᵀ·z.
	for j := 0; j < n; j++ {
		dst[f.perm[j]] = z[j]
	}
	return dst
}

// growIntTo is the package's growF for index buffers.
func growIntTo(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growFTo grows a float scratch buffer to length n without preserving
// contents beyond the existing prefix.
func growFTo(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
