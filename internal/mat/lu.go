package mat

import "math"

// LU holds an LU factorization with partial pivoting of a square matrix:
// P*A = L*U. It supports repeated solves against the same matrix.
type LU struct {
	lu   *Dense    // combined L (unit lower) and U factors
	piv  []int     // row permutation
	sign int       // permutation parity (for determinants)
	tsc  []float64 // transpose-solve scratch
}

// ComputeLU factors the square matrix a. It returns ErrSingular when a
// pivot is exactly zero (the matrix is singular to working precision).
func ComputeLU(a *Dense) (*LU, error) {
	f := &LU{}
	if err := f.Reset(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Reset refactors the receiver against a new matrix of the same (or a new)
// size, reusing the existing buffers when possible. It performs exactly the
// elimination ComputeLU performs, so the factors are bitwise identical; it
// exists so hot loops can refactor a matrix per iteration without
// allocating. On error the receiver must not be used for solves.
func (f *LU) Reset(a *Dense) error {
	if a.rows != a.cols {
		panic("mat: ComputeLU requires a square matrix")
	}
	n := a.rows
	var lu *Dense
	if f.lu != nil && f.lu.rows == n && f.lu.cols == n {
		lu = f.lu
		lu.CopyFrom(a)
	} else {
		lu = a.Clone()
	}
	var piv []int
	if cap(f.piv) >= n {
		piv = f.piv[:n]
	} else {
		piv = make([]int, n)
	}
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at/below row k.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		if maxAbs == 0 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= m * lu.data[k*n+j]
			}
		}
	}
	f.lu, f.piv, f.sign = lu, piv, sign
	return nil
}

// Solve returns x such that A*x = b for the factored matrix.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.lu.rows), b)
}

// SolveInto writes the solution of A*x = b into dst and returns it. dst
// must not alias b. The substitutions are those of Solve, so the result is
// bitwise identical.
func (f *LU) SolveInto(dst, b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	x := dst
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu.data[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.data[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu.data[i*n+i]
	}
	return x
}

// SolveTransposeInto writes the solution of Aᵀ*x = b into dst and returns
// it. dst must not alias b. With P*A = L*U the transposed system reads
// Uᵀ*(Lᵀ*(P*x)) = b, so it is a forward substitution with Uᵀ (lower
// triangular), a back substitution with the unit-diagonal Lᵀ, and the
// inverse row permutation.
func (f *LU) SolveTransposeInto(dst, b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	z := dst
	// Forward substitution with Uᵀ: U is the upper triangle of the packed
	// factor, so Uᵀ[i][j] = lu[j][i] for j <= i.
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= f.lu.data[j*n+i] * z[j]
		}
		z[i] = s / f.lu.data[i*n+i]
	}
	// Back substitution with Lᵀ (unit diagonal): L[i][j] for j < i sits
	// below the diagonal, so Lᵀ[i][j] = lu[j][i] for j > i.
	for i := n - 2; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s -= f.lu.data[j*n+i] * z[j]
		}
		z[i] += s
	}
	// x = Pᵀ*z: piv maps factored row i to original row piv[i], so
	// x[piv[i]] = z[i]. The scatter needs scratch because dst holds z.
	if cap(f.tsc) < n {
		f.tsc = make([]float64, n)
	}
	t := f.tsc[:n]
	copy(t, z)
	for i := 0; i < n; i++ {
		dst[f.piv[i]] = t[i]
	}
	return dst
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve returns x with a*x = b for square a, factoring a once.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := ComputeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveMat returns X with a*X = B for square a, factoring a once and
// solving column by column.
func SolveMat(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows {
		panic(ErrShape)
	}
	f, err := ComputeLU(a)
	if err != nil {
		return nil, err
	}
	out := NewDense(a.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		x := f.Solve(b.Col(j))
		out.SetCol(j, x)
	}
	return out, nil
}

// Inverse returns the inverse of square a.
func Inverse(a *Dense) (*Dense, error) {
	return SolveMat(a, Identity(a.rows))
}
