package mat

import (
	"fmt"
	"math"
	"sort"
)

// ErrNotPositiveDefinite is returned by the sparse Cholesky factorization
// when a pivot is non-positive — for the reduced susceptance matrices this
// package factors, that means the network behind the matrix is islanded (or
// the matrix is otherwise not symmetric positive definite).
var ErrNotPositiveDefinite = fmt.Errorf("%w: not positive definite", ErrSingular)

// CSC is a compressed-sparse-column matrix of float64 values. Row indices
// are strictly ascending within each column and duplicates are summed at
// construction, so the pattern is canonical: two CSC matrices built from
// the same structural triplets share ColPtr/RowIdx exactly, which is what
// lets SparseChol.Refactor revalue a factorization without re-running the
// symbolic analysis.
type CSC struct {
	rows, cols int
	colPtr     []int // length cols+1
	rowIdx     []int // length nnz, ascending within each column
	values     []float64
}

// NewCSCFromTriplets builds an r×c CSC matrix from coordinate triplets,
// summing duplicate (i, j) entries. The input order is irrelevant; the
// resulting pattern depends only on the set of distinct coordinates.
func NewCSCFromTriplets(r, c int, is, js []int, vs []float64) *CSC {
	if len(is) != len(js) || len(is) != len(vs) {
		panic(ErrShape)
	}
	type entry struct {
		i, j int
		v    float64
	}
	entries := make([]entry, len(is))
	for k := range is {
		if is[k] < 0 || is[k] >= r || js[k] < 0 || js[k] >= c {
			panic(fmt.Sprintf("mat: triplet (%d, %d) out of range for %d x %d matrix", is[k], js[k], r, c))
		}
		entries[k] = entry{is[k], js[k], vs[k]}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].j != entries[b].j {
			return entries[a].j < entries[b].j
		}
		return entries[a].i < entries[b].i
	})
	m := &CSC{rows: r, cols: c, colPtr: make([]int, c+1)}
	for k := 0; k < len(entries); {
		e := entries[k]
		v := e.v
		k++
		for k < len(entries) && entries[k].i == e.i && entries[k].j == e.j {
			v += entries[k].v
			k++
		}
		m.rowIdx = append(m.rowIdx, e.i)
		m.values = append(m.values, v)
		m.colPtr[e.j+1]++
	}
	for j := 0; j < c; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	return m
}

// Rows returns the number of rows.
func (m *CSC) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSC) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.rowIdx) }

// Values returns the backing value slice, ordered column-major to match the
// canonical pattern. Callers revaluing a fixed pattern (same triplet
// coordinates, new numbers) may overwrite it in place.
func (m *CSC) Values() []float64 { return m.values }

// ColPtr returns the column pointer slice (length Cols+1). Callers must
// treat it as read-only: it is the pattern, shared by clones.
func (m *CSC) ColPtr() []int { return m.colPtr }

// RowIdx returns the row index slice (length NNZ, ascending within each
// column). Callers must treat it as read-only.
func (m *CSC) RowIdx() []int { return m.rowIdx }

// Pos returns the storage position of entry (i, j), or -1 when the pattern
// has no such entry. It binary-searches the column, so construction-time
// index maps cost O(nnz·log nnz) overall.
func (m *CSC) Pos(i, j int) int {
	lo, hi := m.colPtr[j], m.colPtr[j+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if m.rowIdx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m.colPtr[j+1] && m.rowIdx[lo] == i {
		return lo
	}
	return -1
}

// MulVecInto computes m*x into dst (length Rows) and returns dst.
func (m *CSC) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(ErrShape)
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < m.cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			dst[m.rowIdx[p]] += m.values[p] * xj
		}
	}
	return dst
}

// MulVecTransposeInto computes mᵀ*x into dst (length Cols) and returns
// dst. With CSC storage the transposed product reads each column's entries
// contiguously, so no transposed copy is ever materialized.
func (m *CSC) MulVecTransposeInto(dst, x []float64) []float64 {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(ErrShape)
	}
	for j := 0; j < m.cols; j++ {
		var s float64
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			s += m.values[p] * x[m.rowIdx[p]]
		}
		dst[j] = s
	}
	return dst
}

// Clone returns a deep copy of the matrix. The pattern slices are copied
// too, so the clone's Values may be revalued independently.
func (m *CSC) Clone() *CSC {
	out := &CSC{
		rows:   m.rows,
		cols:   m.cols,
		colPtr: append([]int(nil), m.colPtr...),
		rowIdx: append([]int(nil), m.rowIdx...),
		values: append([]float64(nil), m.values...),
	}
	return out
}

// Dense materializes m as a dense matrix (tests and debugging).
func (m *CSC) Dense() *Dense {
	out := NewDense(m.rows, m.cols)
	for j := 0; j < m.cols; j++ {
		for p := m.colPtr[j]; p < m.colPtr[j+1]; p++ {
			out.Set(m.rowIdx[p], j, m.values[p])
		}
	}
	return out
}

// MinDegreeOrder returns a fill-reducing elimination order for a symmetric
// sparsity pattern given as an adjacency structure: adj[i] lists the
// neighbors of vertex i (self-loops and duplicates are tolerated). It runs
// the classical minimum-degree heuristic on the elimination graph —
// eliminating the minimum-degree vertex and connecting its neighbors into a
// clique — with deterministic smallest-index tie-breaking. The returned
// slice p is the permutation: p[k] is the original index eliminated at step
// k. For the few-hundred-vertex matrices of this project the simple
// quadratic implementation is far below measurement noise.
func MinDegreeOrder(n int, adj [][]int) []int {
	// Neighbor sets as boolean rows: O(n²) memory, trivial updates. The
	// largest supported cases (IEEE 300) make this a ~90 KB scratch.
	nb := make([][]bool, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		nb[i] = make([]bool, n)
	}
	for i, row := range adj {
		for _, j := range row {
			if j == i || j < 0 || j >= n {
				continue
			}
			if !nb[i][j] {
				nb[i][j] = true
				deg[i]++
			}
			if !nb[j][i] {
				nb[j][i] = true
				deg[j]++
			}
		}
	}
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestDeg := -1, n+1
		for i := 0; i < n; i++ {
			if !eliminated[i] && deg[i] < bestDeg {
				best, bestDeg = i, deg[i]
			}
		}
		// Connect the eliminated vertex's remaining neighbors into a clique.
		var nbrs []int
		for j := 0; j < n; j++ {
			if nb[best][j] && !eliminated[j] {
				nbrs = append(nbrs, j)
			}
		}
		for _, a := range nbrs {
			if nb[a][best] {
				nb[a][best] = false
				deg[a]--
			}
			for _, b := range nbrs {
				if a != b && !nb[a][b] {
					nb[a][b] = true
					deg[a]++
				}
			}
		}
		eliminated[best] = true
		order = append(order, best)
	}
	return order
}

// SparseChol is a sparse Cholesky factorization of a symmetric positive
// definite matrix A with a fill-reducing permutation: P·A·Pᵀ = L·Lᵀ. The
// symbolic analysis (ordering, elimination tree, pattern of L) runs once at
// construction; Refactor revalues the numeric factors for a matrix with the
// identical pattern, which is the per-candidate operation of the MTD
// searches (the reactances change every candidate, the topology never
// does).
type SparseChol struct {
	n    int
	p    []int // p[k] = original index of the k-th pivot
	pinv []int // pinv[i] = position of original index i in the pivot order

	// Permuted matrix C = P·A·Pᵀ, upper triangle (column-major), with a map
	// from A's storage positions to C's so Refactor is a gather + factor.
	cp, ci []int
	cx     []float64
	amap   []int // A storage position -> C storage position (-1: lower-triangle duplicate folded elsewhere)

	parent []int // elimination tree of C

	// Factor L (unit structure: diagonal entry first in each column).
	lp, li []int
	lx     []float64

	// Scratch.
	w    []int
	x    []float64
	s    []int
	cfin []int
	y, z []float64 // solve scratch
}

// NewSparseChol analyzes and factors the symmetric positive definite matrix
// a (both triangles stored, as a susceptance-style assembly produces). It
// returns ErrNotPositiveDefinite (an ErrSingular) when a pivot is
// non-positive.
func NewSparseChol(a *CSC) (*SparseChol, error) {
	if a.rows != a.cols {
		panic("mat: sparse Cholesky requires a square matrix")
	}
	n := a.rows
	c := &SparseChol{n: n}

	// Fill-reducing order from the symmetric pattern.
	adj := make([][]int, n)
	for j := 0; j < n; j++ {
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			i := a.rowIdx[p]
			if i != j {
				adj[j] = append(adj[j], i)
			}
		}
	}
	c.p = MinDegreeOrder(n, adj)
	c.pinv = make([]int, n)
	for k, orig := range c.p {
		c.pinv[orig] = k
	}

	// C = P·A·Pᵀ upper triangle with A-position map.
	c.buildPermuted(a)

	// Elimination tree of C (upper-triangle CSC).
	c.parent = etree(n, c.cp, c.ci)

	// Column counts of L via ereach over each row, then allocate L.
	c.w = make([]int, n)
	c.s = make([]int, n)
	c.x = make([]float64, n)
	counts := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < n; k++ {
		counts[k]++ // diagonal
		for p := c.cp[k]; p < c.cp[k+1]; p++ {
			i := c.ci[p]
			for t := i; t != -1 && t < k && mark[t] != k; t = c.parent[t] {
				counts[t]++ // L(k, t) below the diagonal of column t
				mark[t] = k
			}
		}
	}
	c.lp = make([]int, n+1)
	for k := 0; k < n; k++ {
		c.lp[k+1] = c.lp[k] + counts[k]
	}
	c.li = make([]int, c.lp[n])
	c.lx = make([]float64, c.lp[n])
	c.cfin = make([]int, n)
	c.y = make([]float64, n)
	c.z = make([]float64, n)

	if err := c.factor(); err != nil {
		return nil, err
	}
	return c, nil
}

// buildPermuted constructs the upper triangle of C = P·A·Pᵀ and the A→C
// position map used by Refactor.
func (c *SparseChol) buildPermuted(a *CSC) {
	n := c.n
	type centry struct {
		i, j, apos int
		v          float64
	}
	var entries []centry
	for j := 0; j < n; j++ {
		for p := a.colPtr[j]; p < a.colPtr[j+1]; p++ {
			i := a.rowIdx[p]
			pi, pj := c.pinv[i], c.pinv[j]
			if pi > pj {
				// Lower-triangle entry of C; its transpose twin carries the
				// value (A is symmetric), so skip it in the map.
				continue
			}
			entries = append(entries, centry{pi, pj, p, a.values[p]})
		}
	}
	sort.Slice(entries, func(x, y int) bool {
		if entries[x].j != entries[y].j {
			return entries[x].j < entries[y].j
		}
		return entries[x].i < entries[y].i
	})
	c.cp = make([]int, n+1)
	c.ci = c.ci[:0]
	c.cx = c.cx[:0]
	c.amap = make([]int, a.NNZ())
	for i := range c.amap {
		c.amap[i] = -1
	}
	for _, e := range entries {
		c.amap[e.apos] = len(c.ci)
		c.ci = append(c.ci, e.i)
		c.cx = append(c.cx, e.v)
		c.cp[e.j+1]++
	}
	for j := 0; j < n; j++ {
		c.cp[j+1] += c.cp[j]
	}
}

// etree computes the elimination tree of a symmetric matrix given its upper
// triangle in CSC form (Liu's algorithm with path compression via
// ancestors).
func etree(n int, cp, ci []int) []int {
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := cp[k]; p < cp[k+1]; p++ {
			for i := ci[p]; i != -1 && i < k; {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L: the nodes reachable
// from the pattern of C(:, k) by walking up the elimination tree, in
// topological (descending-from-k) order. The result is written into
// c.s[top:n] and top is returned. c.w is the visited marker, keyed by k+1.
func (c *SparseChol) ereach(k int) int {
	top := c.n
	mark := k + 1
	c.w[k] = mark
	for p := c.cp[k]; p < c.cp[k+1]; p++ {
		i := c.ci[p]
		if i > k {
			continue
		}
		// Walk up the etree until a visited node, stacking the path.
		lenPath := 0
		for ; i != -1 && c.w[i] != mark; i = c.parent[i] {
			c.s[lenPath] = i
			lenPath++
			c.w[i] = mark
		}
		for lenPath > 0 {
			lenPath--
			top--
			c.s[top] = c.s[lenPath]
		}
	}
	return top
}

// factor runs the up-looking numeric factorization over the current values
// of C, writing L in place. Pivots are tested against a relative tolerance
// (not exact zero): a structurally islanded susceptance matrix produces a
// pivot of rounding-error size, and accepting it would silently yield
// garbage solves.
func (c *SparseChol) factor() error {
	n := c.n
	var maxDiag float64
	for k := 0; k < n; k++ {
		for p := c.cp[k]; p < c.cp[k+1]; p++ {
			if c.ci[p] == k {
				if d := math.Abs(c.cx[p]); d > maxDiag {
					maxDiag = d
				}
			}
		}
	}
	pivTol := 1e-12 * maxDiag
	for i := range c.w {
		c.w[i] = 0
	}
	for k := 0; k < n; k++ {
		c.cfin[k] = c.lp[k]
	}
	for k := 0; k < n; k++ {
		top := c.ereach(k)
		// Scatter the upper triangle of column k of C.
		d := 0.0
		for p := c.cp[k]; p < c.cp[k+1]; p++ {
			i := c.ci[p]
			if i < k {
				c.x[i] = c.cx[p]
			} else if i == k {
				d = c.cx[p]
			}
		}
		// Solve L(0:k, 0:k)·l = c for row k of L in etree order.
		for t := top; t < n; t++ {
			i := c.s[t]
			lki := c.x[i] / c.lx[c.lp[i]] // divide by L(i, i)
			c.x[i] = 0
			for p := c.lp[i] + 1; p < c.cfin[i]; p++ {
				c.x[c.li[p]] -= c.lx[p] * lki
			}
			d -= lki * lki
			q := c.cfin[i]
			c.cfin[i]++
			c.li[q] = k
			c.lx[q] = lki
		}
		if d <= pivTol {
			return ErrNotPositiveDefinite
		}
		q := c.cfin[k]
		c.cfin[k]++
		c.li[q] = k
		c.lx[q] = math.Sqrt(d)
	}
	return nil
}

// Refactor revalues the factorization for a matrix with the identical
// sparsity pattern as the one the factorization was built from (same
// triplet coordinates; only the values differ). This is the per-candidate
// hot path: no ordering, no symbolic analysis, no allocation.
func (c *SparseChol) Refactor(a *CSC) error {
	if a.rows != c.n || a.cols != c.n || a.NNZ() != len(c.amap) {
		panic(ErrShape)
	}
	for p, q := range c.amap {
		if q >= 0 {
			c.cx[q] = a.values[p]
		}
	}
	return c.factor()
}

// SolveInto writes the solution of A·x = b into dst and returns it. dst
// may alias b.
func (c *SparseChol) SolveInto(dst, b []float64) []float64 {
	n := c.n
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	y := c.y
	for k := 0; k < n; k++ {
		y[k] = b[c.p[k]]
	}
	// Forward: L·z = y (diagonal entry first in each column).
	for j := 0; j < n; j++ {
		yj := y[j] / c.lx[c.lp[j]]
		y[j] = yj
		if yj == 0 {
			continue
		}
		for p := c.lp[j] + 1; p < c.lp[j+1]; p++ {
			y[c.li[p]] -= c.lx[p] * yj
		}
	}
	// Backward: Lᵀ·w = z.
	for j := n - 1; j >= 0; j-- {
		s := y[j]
		for p := c.lp[j] + 1; p < c.lp[j+1]; p++ {
			s -= c.lx[p] * y[c.li[p]]
		}
		y[j] = s / c.lx[c.lp[j]]
	}
	for k := 0; k < n; k++ {
		dst[c.p[k]] = y[k]
	}
	return dst
}

// FillIn returns the number of stored entries of the factor L, a direct
// measure of how well the ordering contained fill.
func (c *SparseChol) FillIn() int { return len(c.li) }

// Clone returns an independently-usable copy of the factorization: the
// numeric factor, the permuted values and every scratch buffer are copied,
// while the immutable symbolic structure (ordering, elimination tree,
// pattern pointers) is shared. A clone may Refactor and solve concurrently
// with the original — this is what gives per-worker γ-sketch sessions their
// own Cholesky state without redoing the symbolic analysis.
func (c *SparseChol) Clone() *SparseChol {
	out := &SparseChol{
		n:      c.n,
		p:      c.p,
		pinv:   c.pinv,
		cp:     c.cp,
		ci:     c.ci,
		amap:   c.amap,
		parent: c.parent,
		lp:     c.lp,
		cx:     append([]float64(nil), c.cx...),
		li:     append([]int(nil), c.li...),
		lx:     append([]float64(nil), c.lx...),
		w:      make([]int, c.n),
		x:      make([]float64, c.n),
		s:      make([]int, c.n),
		cfin:   make([]int, c.n),
		y:      make([]float64, c.n),
		z:      make([]float64, c.n),
	}
	return out
}

// HalfSolveInto writes y = L⁻¹·(P·b) into dst and returns it: the forward
// half of SolveInto, exposed for callers that work with the factor itself
// (the γ-sketch evaluator's implicit orthonormalization, where the columns
// of B·Pᵀ·L⁻ᵀ are orthonormal whenever L·Lᵀ = P·(BᵀB)·Pᵀ). dst must not
// alias b.
func (c *SparseChol) HalfSolveInto(dst, b []float64) []float64 {
	n := c.n
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	for k := 0; k < n; k++ {
		dst[k] = b[c.p[k]]
	}
	for j := 0; j < n; j++ {
		yj := dst[j] / c.lx[c.lp[j]]
		dst[j] = yj
		if yj == 0 {
			continue
		}
		for p := c.lp[j] + 1; p < c.lp[j+1]; p++ {
			dst[c.li[p]] -= c.lx[p] * yj
		}
	}
	return dst
}

// HalfSolveTransposeInto writes y = Pᵀ·L⁻ᵀ·b into dst and returns it: the
// backward half of SolveInto (SolveInto(dst, b) ≡
// HalfSolveTransposeInto(dst, HalfSolveInto(scratch, b))). It uses the
// factorization's solve scratch, so it shares SolveInto's concurrency rule:
// one goroutine per SparseChol (clones for the rest). dst must not alias b.
func (c *SparseChol) HalfSolveTransposeInto(dst, b []float64) []float64 {
	n := c.n
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	z := c.z
	copy(z, b)
	for j := n - 1; j >= 0; j-- {
		s := z[j]
		for p := c.lp[j] + 1; p < c.lp[j+1]; p++ {
			s -= c.lx[p] * z[c.li[p]]
		}
		z[j] = s / c.lx[c.lp[j]]
	}
	for k := 0; k < n; k++ {
		dst[c.p[k]] = z[k]
	}
	return dst
}
