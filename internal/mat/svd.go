package mat

import (
	"math"
	"sort"
)

// SVD holds a (thin) singular value decomposition A = U * diag(S) * Vᵀ,
// where A is m×n with m >= n, U is m×n with orthonormal columns, S holds
// the n singular values in descending order and V is n×n orthogonal.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// ComputeSVD computes the thin SVD of a (rows >= cols required) using
// one-sided Jacobi rotations. The method is slow relative to bidiagonal
// approaches but is simple, backward-stable and highly accurate, which is
// exactly the tradeoff wanted for the small matrices (≤ a few hundred rows)
// in this project.
func ComputeSVD(a *Dense) *SVD {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: ComputeSVD requires rows >= cols")
	}
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: repeatedly orthogonalize pairs of columns of U.
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram matrix entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation that annihilates apq.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					u.data[i*n+p] = c*up - s*uq
					u.data[i*n+q] = s*up + c*uq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms of U are the singular values.
	type colSV struct {
		sv  float64
		idx int
	}
	svs := make([]colSV, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += u.data[i*n+j] * u.data[i*n+j]
		}
		svs[j] = colSV{sv: math.Sqrt(s), idx: j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].sv > svs[j].sv })

	outU := NewDense(m, n)
	outV := NewDense(n, n)
	s := make([]float64, n)
	for jj, cs := range svs {
		s[jj] = cs.sv
		j := cs.idx
		if cs.sv > 0 {
			inv := 1 / cs.sv
			for i := 0; i < m; i++ {
				outU.data[i*n+jj] = u.data[i*n+j] * inv
			}
		}
		for i := 0; i < n; i++ {
			outV.data[i*n+jj] = v.data[i*n+j]
		}
	}
	return &SVD{U: outU, S: s, V: outV}
}

// SingularValues returns the singular values of a (rows >= cols required)
// in descending order.
func SingularValues(a *Dense) []float64 {
	if a.cols == 0 {
		return nil
	}
	return ComputeSVD(a).S
}

// SVDWorkspace holds the scratch buffers for repeated singular-value-only
// computations. The zero value is ready to use; buffers grow on demand and
// are reused across calls, so steady-state calls allocate nothing.
type SVDWorkspace struct {
	u     []float64
	sv    []float64
	norm2 []float64 // cached column squared norms
	nval  []bool    // norm2[j] matches the current column j
	// Smallest-singular-value scratch (gram matrix, tridiagonal, vectors).
	g       []float64
	diag    []float64
	offdiag []float64
	hv      []float64
}

// SingularValues computes the singular values of a (rows >= cols required)
// in descending order, reusing the workspace buffers. It performs exactly
// the same Jacobi rotation sequence as ComputeSVD — the rotations applied
// to U fully determine the singular values, and the V accumulation and
// output assembly that ComputeSVD additionally performs do not affect them
// — so the returned values are bitwise identical to ComputeSVD(a).S. The
// returned slice is owned by the workspace and overwritten by the next
// call.
func (ws *SVDWorkspace) SingularValues(a *Dense) []float64 {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: SingularValues requires rows >= cols")
	}
	if n == 0 {
		return nil
	}
	// Work on Aᵀ so each column of A is a contiguous row: the Jacobi
	// rotations and Gram accumulations then stream through memory. Element
	// for element the arithmetic is exactly ComputeSVD's, so the values
	// are unchanged.
	if cap(ws.u) < m*n {
		ws.u = make([]float64, m*n)
	}
	ut := ws.u[:m*n]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		for j, v := range arow {
			ut[j*m+i] = v
		}
	}

	if cap(ws.norm2) < n {
		ws.norm2 = make([]float64, n)
		ws.nval = make([]bool, n)
	}
	norm2 := ws.norm2[:n]
	nval := ws.nval[:n]
	for j := range nval {
		nval[j] = false
	}
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			colP := ut[p*m : (p+1)*m]
			for q := p + 1; q < n; q++ {
				colQ := ut[q*m : (q+1)*m]
				// Gram entries. Column squared norms are reused when the
				// column is untouched since they were last summed —
				// recomputing over identical data would reproduce the same
				// bits — and the common stale-stale case keeps the original
				// fused accumulation loop.
				var app, aqq, apq float64
				switch {
				case !nval[p] && !nval[q]:
					for i := 0; i < m; i++ {
						up := colP[i]
						uq := colQ[i]
						app += up * up
						aqq += uq * uq
						apq += up * uq
					}
					norm2[p], nval[p] = app, true
					norm2[q], nval[q] = aqq, true
				case nval[p] && nval[q]:
					app, aqq = norm2[p], norm2[q]
					for i := 0; i < m; i++ {
						apq += colP[i] * colQ[i]
					}
				case nval[p]:
					app = norm2[p]
					for i := 0; i < m; i++ {
						uq := colQ[i]
						aqq += uq * uq
						apq += colP[i] * uq
					}
					norm2[q], nval[q] = aqq, true
				default:
					aqq = norm2[q]
					for i := 0; i < m; i++ {
						up := colP[i]
						app += up * up
						apq += up * colQ[i]
					}
					norm2[p], nval[p] = app, true
				}
				// Convergence test |apq| <= eps*sqrt(app*aqq). The squared
				// comparison with a 4×/0.25× safety band decides all but
				// borderline cases without the square root; inside the band
				// (a few ulps wide) the exact historical test runs. Both
				// sides of the band provably agree with the exact test, so
				// the rotation sequence is unchanged.
				apq2 := apq * apq
				bound := eps * eps * (app * aqq)
				if apq2 <= 0.25*bound {
					continue
				}
				if apq2 <= 4*bound {
					if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
						continue
					}
				}
				nval[p] = false
				nval[q] = false
				off += apq * apq
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := colP[i]
					uq := colQ[i]
					colP[i] = c*up - s*uq
					colQ[i] = s*up + c*uq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	if cap(ws.sv) < n {
		ws.sv = make([]float64, n)
	}
	sv := ws.sv[:n]
	for j := 0; j < n; j++ {
		col := ut[j*m : (j+1)*m]
		var s float64
		for _, v := range col {
			s += v * v
		}
		sv[j] = math.Sqrt(s)
	}
	// Descending order, as ComputeSVD reports.
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// SingularValuesFast computes the singular values of a (rows >= cols
// required) in descending order with the large-case kernels: the one-sided
// Jacobi sweep walks column pairs in cache-sized blocks, the 2×2 Gram
// entries use the fused multi-accumulator reduction, the rotation loop is
// unrolled, and column squared norms are memoized across untouched pairs.
// The rotation sequence and summation orders differ from SingularValues,
// so the results agree with it only to rounding (well inside 1e-9
// relative) — large-case callers only; the dense sub-threshold path must
// keep using SingularValues.
func (ws *SVDWorkspace) SingularValuesFast(a *Dense) []float64 {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: SingularValues requires rows >= cols")
	}
	if n == 0 {
		return nil
	}
	// Transposed (column-contiguous) working copy, as SingularValues uses.
	if cap(ws.u) < m*n {
		ws.u = make([]float64, m*n)
	}
	ut := ws.u[:m*n]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		for j, v := range arow {
			ut[j*m+i] = v
		}
	}

	if cap(ws.norm2) < n {
		ws.norm2 = make([]float64, n)
		ws.nval = make([]bool, n)
	}
	norm2 := ws.norm2[:n]
	nval := ws.nval[:n]
	for j := range nval {
		nval[j] = false
	}

	const maxSweeps = 60
	const eps = 1e-15
	const eps2 = eps * eps
	// Block size: 2*blk columns must fit in L1 alongside the scalar state.
	// At 117 rows a column is ~1 KB, so 8-column blocks keep the working
	// set around 16 KB.
	const blk = 8

	// rotatePair orthogonalizes columns p and q, returning their Gram
	// off-diagonal contribution to the sweep's convergence measure.
	rotatePair := func(p, q int) float64 {
		colP := ut[p*m : (p+1)*m]
		colQ := ut[q*m : (q+1)*m]
		var app, aqq, apq float64
		switch {
		case nval[p] && nval[q]:
			app, aqq = norm2[p], norm2[q]
			apq = DotFast(colP, colQ)
		case nval[p]:
			app = norm2[p]
			aqq, apq = Norm2SqFast(colQ), DotFast(colP, colQ)
			norm2[q], nval[q] = aqq, true
		case nval[q]:
			aqq = norm2[q]
			app, apq = Norm2SqFast(colP), DotFast(colP, colQ)
			norm2[p], nval[p] = app, true
		default:
			app, aqq, apq = dot3Fast(colP, colQ)
			norm2[p], nval[p] = app, true
			norm2[q], nval[q] = aqq, true
		}
		if apq*apq <= eps2*(app*aqq) {
			return 0
		}
		nval[p] = false
		nval[q] = false
		tau := (aqq - app) / (2 * apq)
		var t float64
		if tau >= 0 {
			t = 1 / (tau + math.Sqrt(1+tau*tau))
		} else {
			t = -1 / (-tau + math.Sqrt(1+tau*tau))
		}
		c := 1 / math.Sqrt(1+t*t)
		s := c * t
		rotateFast(colP, colQ, c, s)
		return apq * apq
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for pb := 0; pb < n; pb += blk {
			pe := pb + blk
			if pe > n {
				pe = n
			}
			// Diagonal block: pairs inside [pb, pe).
			for p := pb; p < pe-1; p++ {
				for q := p + 1; q < pe; q++ {
					off += rotatePair(p, q)
				}
			}
			// Off-diagonal blocks: [pb, pe) × [qb, qe). Each unordered
			// pair is visited exactly once per sweep, so this is a cyclic
			// ordering and the one-sided Jacobi convergence argument
			// applies unchanged.
			for qb := pe; qb < n; qb += blk {
				qe := qb + blk
				if qe > n {
					qe = n
				}
				for p := pb; p < pe; p++ {
					for q := qb; q < qe; q++ {
						off += rotatePair(p, q)
					}
				}
			}
		}
		if off == 0 {
			break
		}
	}

	if cap(ws.sv) < n {
		ws.sv = make([]float64, n)
	}
	sv := ws.sv[:n]
	for j := 0; j < n; j++ {
		sv[j] = math.Sqrt(Norm2SqFast(ut[j*m : (j+1)*m]))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// SmallestSingularValueFast returns σ_min(a) (rows >= cols required)
// without computing the rest of the spectrum: it forms the Gram matrix
// G = aᵀa with the multi-accumulator kernels, Householder-tridiagonalizes
// it, and bisects for the smallest eigenvalue with Sturm counts —
// O(cols³/3) instead of the Jacobi sweep's many passes. The γ evaluation
// needs exactly this value (cos of the largest principal angle), and on
// the 117-state cross-Gram matrices it replaces ~9 ms of Jacobi sweeps
// with well under 1 ms. Squaring halves the precision of tiny singular
// values (σ below ~1e-8 come back with ~1e-8 absolute error), which the
// large-case 1e-9 γ contract absorbs at its acos conditioning; the exact
// Jacobi path remains for spectrum callers and the dense path.
func (ws *SVDWorkspace) SmallestSingularValueFast(a *Dense) float64 {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: SmallestSingularValueFast requires rows >= cols")
	}
	if n == 0 {
		return 0
	}
	// G = aᵀa, built column-contiguous from a's rows (a is row-major, so
	// column j of a is strided; go through the transposed copy like the
	// Jacobi kernel to keep the reductions streaming).
	if cap(ws.u) < m*n {
		ws.u = make([]float64, m*n)
	}
	at := ws.u[:m*n]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		for j, v := range arow {
			at[j*m+i] = v
		}
	}
	if cap(ws.g) < n*n {
		ws.g = make([]float64, n*n)
	}
	g := ws.g[:n*n]
	for i := 0; i < n; i++ {
		ci := at[i*m : (i+1)*m]
		g[i*n+i] = Norm2SqFast(ci)
		for j := i + 1; j < n; j++ {
			v := DotFast(ci, at[j*m:(j+1)*m])
			g[i*n+j] = v
			g[j*n+i] = v
		}
	}

	// Householder tridiagonalization: for each column k annihilate the
	// entries below the first subdiagonal with H = I − 2vvᵀ applied from
	// both sides (G ← G − 2vqᵀ − 2qvᵀ with p = Gv, q = p − (vᵀp)v).
	if cap(ws.diag) < n {
		ws.diag = make([]float64, n)
		ws.offdiag = make([]float64, n)
	}
	d := ws.diag[:n]
	e := ws.offdiag[:n]
	ws.hv = growSlice(ws.hv, 2*n)
	v := ws.hv[:n]
	p := ws.hv[n : 2*n]
	for k := 0; k < n-2; k++ {
		// Householder vector for G[k+1:, k].
		var norm2 float64
		for i := k + 1; i < n; i++ {
			norm2 += g[i*n+k] * g[i*n+k]
		}
		sub := math.Sqrt(norm2)
		if sub == 0 {
			e[k] = 0
			continue
		}
		x0 := g[(k+1)*n+k]
		alpha := -math.Copysign(sub, x0)
		var vn2 float64
		for i := k + 1; i < n; i++ {
			v[i] = g[i*n+k]
		}
		v[k+1] -= alpha
		for i := k + 1; i < n; i++ {
			vn2 += v[i] * v[i]
		}
		if vn2 == 0 {
			e[k] = alpha
			continue
		}
		inv := 1 / math.Sqrt(vn2)
		for i := k + 1; i < n; i++ {
			v[i] *= inv
		}
		// p = G v over the trailing block, beta = vᵀ p, q = p − beta v.
		var beta float64
		for i := k + 1; i < n; i++ {
			row := g[i*n:]
			var s float64
			for j := k + 1; j < n; j++ {
				s += row[j] * v[j]
			}
			p[i] = s
			beta += v[i] * s
		}
		for i := k + 1; i < n; i++ {
			p[i] -= beta * v[i] // q
		}
		for i := k + 1; i < n; i++ {
			row := g[i*n:]
			vi2, qi2 := 2*v[i], 2*p[i]
			for j := k + 1; j <= i; j++ {
				row[j] -= vi2*p[j] + qi2*v[j]
			}
		}
		// Mirror the lower triangle (only the trailing block is read).
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < i; j++ {
				g[j*n+i] = g[i*n+j]
			}
		}
		e[k] = alpha
	}
	if n >= 2 {
		e[n-2] = g[(n-1)*n+n-2]
	}
	for i := 0; i < n; i++ {
		d[i] = g[i*n+i]
	}

	// Sturm bisection for the smallest eigenvalue of the tridiagonal
	// (d, e). countBelow(t) counts eigenvalues < t via the LDLᵀ sign
	// recurrence.
	countBelow := func(t float64) int {
		cnt := 0
		q := 1.0
		for i := 0; i < n; i++ {
			var esq float64
			if i > 0 {
				esq = e[i-1] * e[i-1]
			}
			q = d[i] - t - esq/q
			if q < 0 {
				cnt++
			}
			if q == 0 {
				q = 1e-300
			}
		}
		return cnt
	}
	lo, hi := d[0], d[0]
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		if d[i]-r < lo {
			lo = d[i] - r
		}
		if d[i] < hi {
			hi = d[i] // λ_min never exceeds the smallest diagonal entry
		}
	}
	if countBelow(hi) == 0 {
		// λ_min equals the bracket top (constant diagonal edge case).
		hi = hi + math.Abs(hi)*1e-15 + 1e-300
	}
	for iter := 0; iter < 200 && hi-lo > 1e-16*(1+math.Abs(hi)); iter++ {
		mid := 0.5 * (lo + hi)
		if countBelow(mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	lambda := hi
	if lambda < 0 {
		lambda = 0
	}
	return math.Sqrt(lambda)
}

// growSlice grows a float scratch slice to length n, reusing capacity.
func growSlice(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
