package mat

import (
	"math"
	"sort"
)

// SVD holds a (thin) singular value decomposition A = U * diag(S) * Vᵀ,
// where A is m×n with m >= n, U is m×n with orthonormal columns, S holds
// the n singular values in descending order and V is n×n orthogonal.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// ComputeSVD computes the thin SVD of a (rows >= cols required) using
// one-sided Jacobi rotations. The method is slow relative to bidiagonal
// approaches but is simple, backward-stable and highly accurate, which is
// exactly the tradeoff wanted for the small matrices (≤ a few hundred rows)
// in this project.
func ComputeSVD(a *Dense) *SVD {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: ComputeSVD requires rows >= cols")
	}
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: repeatedly orthogonalize pairs of columns of U.
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram matrix entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation that annihilates apq.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					u.data[i*n+p] = c*up - s*uq
					u.data[i*n+q] = s*up + c*uq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms of U are the singular values.
	type colSV struct {
		sv  float64
		idx int
	}
	svs := make([]colSV, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += u.data[i*n+j] * u.data[i*n+j]
		}
		svs[j] = colSV{sv: math.Sqrt(s), idx: j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].sv > svs[j].sv })

	outU := NewDense(m, n)
	outV := NewDense(n, n)
	s := make([]float64, n)
	for jj, cs := range svs {
		s[jj] = cs.sv
		j := cs.idx
		if cs.sv > 0 {
			inv := 1 / cs.sv
			for i := 0; i < m; i++ {
				outU.data[i*n+jj] = u.data[i*n+j] * inv
			}
		}
		for i := 0; i < n; i++ {
			outV.data[i*n+jj] = v.data[i*n+j]
		}
	}
	return &SVD{U: outU, S: s, V: outV}
}

// SingularValues returns the singular values of a (rows >= cols required)
// in descending order.
func SingularValues(a *Dense) []float64 {
	if a.cols == 0 {
		return nil
	}
	return ComputeSVD(a).S
}

// SVDWorkspace holds the scratch buffers for repeated singular-value-only
// computations. The zero value is ready to use; buffers grow on demand and
// are reused across calls, so steady-state calls allocate nothing.
type SVDWorkspace struct {
	u     []float64
	sv    []float64
	norm2 []float64 // cached column squared norms
	nval  []bool    // norm2[j] matches the current column j
}

// SingularValues computes the singular values of a (rows >= cols required)
// in descending order, reusing the workspace buffers. It performs exactly
// the same Jacobi rotation sequence as ComputeSVD — the rotations applied
// to U fully determine the singular values, and the V accumulation and
// output assembly that ComputeSVD additionally performs do not affect them
// — so the returned values are bitwise identical to ComputeSVD(a).S. The
// returned slice is owned by the workspace and overwritten by the next
// call.
func (ws *SVDWorkspace) SingularValues(a *Dense) []float64 {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: SingularValues requires rows >= cols")
	}
	if n == 0 {
		return nil
	}
	// Work on Aᵀ so each column of A is a contiguous row: the Jacobi
	// rotations and Gram accumulations then stream through memory. Element
	// for element the arithmetic is exactly ComputeSVD's, so the values
	// are unchanged.
	if cap(ws.u) < m*n {
		ws.u = make([]float64, m*n)
	}
	ut := ws.u[:m*n]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		for j, v := range arow {
			ut[j*m+i] = v
		}
	}

	if cap(ws.norm2) < n {
		ws.norm2 = make([]float64, n)
		ws.nval = make([]bool, n)
	}
	norm2 := ws.norm2[:n]
	nval := ws.nval[:n]
	for j := range nval {
		nval[j] = false
	}
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			colP := ut[p*m : (p+1)*m]
			for q := p + 1; q < n; q++ {
				colQ := ut[q*m : (q+1)*m]
				// Gram entries. Column squared norms are reused when the
				// column is untouched since they were last summed —
				// recomputing over identical data would reproduce the same
				// bits — and the common stale-stale case keeps the original
				// fused accumulation loop.
				var app, aqq, apq float64
				switch {
				case !nval[p] && !nval[q]:
					for i := 0; i < m; i++ {
						up := colP[i]
						uq := colQ[i]
						app += up * up
						aqq += uq * uq
						apq += up * uq
					}
					norm2[p], nval[p] = app, true
					norm2[q], nval[q] = aqq, true
				case nval[p] && nval[q]:
					app, aqq = norm2[p], norm2[q]
					for i := 0; i < m; i++ {
						apq += colP[i] * colQ[i]
					}
				case nval[p]:
					app = norm2[p]
					for i := 0; i < m; i++ {
						uq := colQ[i]
						aqq += uq * uq
						apq += colP[i] * uq
					}
					norm2[q], nval[q] = aqq, true
				default:
					aqq = norm2[q]
					for i := 0; i < m; i++ {
						up := colP[i]
						app += up * up
						apq += up * colQ[i]
					}
					norm2[p], nval[p] = app, true
				}
				// Convergence test |apq| <= eps*sqrt(app*aqq). The squared
				// comparison with a 4×/0.25× safety band decides all but
				// borderline cases without the square root; inside the band
				// (a few ulps wide) the exact historical test runs. Both
				// sides of the band provably agree with the exact test, so
				// the rotation sequence is unchanged.
				apq2 := apq * apq
				bound := eps * eps * (app * aqq)
				if apq2 <= 0.25*bound {
					continue
				}
				if apq2 <= 4*bound {
					if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
						continue
					}
				}
				nval[p] = false
				nval[q] = false
				off += apq * apq
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := colP[i]
					uq := colQ[i]
					colP[i] = c*up - s*uq
					colQ[i] = s*up + c*uq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	if cap(ws.sv) < n {
		ws.sv = make([]float64, n)
	}
	sv := ws.sv[:n]
	for j := 0; j < n; j++ {
		col := ut[j*m : (j+1)*m]
		var s float64
		for _, v := range col {
			s += v * v
		}
		sv[j] = math.Sqrt(s)
	}
	// Descending order, as ComputeSVD reports.
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}
