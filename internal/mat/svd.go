package mat

import (
	"math"
	"sort"
)

// SVD holds a (thin) singular value decomposition A = U * diag(S) * Vᵀ,
// where A is m×n with m >= n, U is m×n with orthonormal columns, S holds
// the n singular values in descending order and V is n×n orthogonal.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// ComputeSVD computes the thin SVD of a (rows >= cols required) using
// one-sided Jacobi rotations. The method is slow relative to bidiagonal
// approaches but is simple, backward-stable and highly accurate, which is
// exactly the tradeoff wanted for the small matrices (≤ a few hundred rows)
// in this project.
func ComputeSVD(a *Dense) *SVD {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: ComputeSVD requires rows >= cols")
	}
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: repeatedly orthogonalize pairs of columns of U.
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram matrix entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation that annihilates apq.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.data[i*n+p]
					uq := u.data[i*n+q]
					u.data[i*n+p] = c*up - s*uq
					u.data[i*n+q] = s*up + c*uq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms of U are the singular values.
	type colSV struct {
		sv  float64
		idx int
	}
	svs := make([]colSV, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += u.data[i*n+j] * u.data[i*n+j]
		}
		svs[j] = colSV{sv: math.Sqrt(s), idx: j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].sv > svs[j].sv })

	outU := NewDense(m, n)
	outV := NewDense(n, n)
	s := make([]float64, n)
	for jj, cs := range svs {
		s[jj] = cs.sv
		j := cs.idx
		if cs.sv > 0 {
			inv := 1 / cs.sv
			for i := 0; i < m; i++ {
				outU.data[i*n+jj] = u.data[i*n+j] * inv
			}
		}
		for i := 0; i < n; i++ {
			outV.data[i*n+jj] = v.data[i*n+j]
		}
	}
	return &SVD{U: outU, S: s, V: outV}
}

// SingularValues returns the singular values of a (rows >= cols required)
// in descending order.
func SingularValues(a *Dense) []float64 {
	if a.cols == 0 {
		return nil
	}
	return ComputeSVD(a).S
}
