package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

func TestDotFastAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 117, 490} {
		x, y := randVec(rng, n), randVec(rng, n)
		got, want := DotFast(x, y), Dot(x, y)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("n=%d: DotFast %.17g vs Dot %.17g", n, got, want)
		}
	}
}

func TestNorm2SqFastAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 4, 9, 117} {
		x := randVec(rng, n)
		got := Norm2SqFast(x)
		want := Norm2(x)
		if math.Abs(math.Sqrt(got)-want) > 1e-12*(1+want) {
			t.Fatalf("n=%d: sqrt(Norm2SqFast) %.17g vs Norm2 %.17g", n, math.Sqrt(got), want)
		}
	}
}

func TestAxpyFastAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 9, 117} {
		x := randVec(rng, n)
		y1 := randVec(rng, n)
		y2 := append([]float64(nil), y1...)
		AxpyVec(0.37, x, y1)
		AxpyFast(0.37, x, y2)
		for i := range y1 {
			// Element results are identical expressions; require exactness.
			if y1[i] != y2[i] {
				t.Fatalf("n=%d: AxpyFast[%d] = %v, AxpyVec = %v", n, i, y2[i], y1[i])
			}
		}
	}
}

// TestSmallestSingularValueFastAgrees compares the tridiagonal-bisection
// σ_min kernel against the full Jacobi spectrum, including the clustered
// near-identity matrices the γ evaluation actually produces (cross-Gram of
// two nearby orthonormal bases has every singular value near 1).
func TestSmallestSingularValueFastAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ws, ref SVDWorkspace
	check := func(name string, a *Dense) {
		t.Helper()
		sv := ref.SingularValues(a)
		want := sv[len(sv)-1]
		got := ws.SmallestSingularValueFast(a)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("%s: σ_min = %.15g, want %.15g", name, got, want)
		}
	}
	for _, dims := range [][2]int{{1, 1}, {4, 2}, {9, 9}, {40, 33}, {117, 117}} {
		m, n := dims[0], dims[1]
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, 2*rng.Float64()-1)
			}
		}
		check("random", a)
	}
	// Near-identity with a clustered spectrum: I + small symmetric noise.
	n := 60
	a := Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Add(i, j, 0.01*(2*rng.Float64()-1))
		}
	}
	check("near-identity", a)
	// Exactly repeated singular values (block diagonal of equal scalings).
	d := make([]float64, n)
	for i := range d {
		d[i] = 0.95
	}
	d[n-1] = 0.93
	d[n-2] = 0.93
	check("repeated", Diagonal(d))
}

// TestSingularValuesFastAgrees compares the blocked multi-accumulator
// Jacobi kernel with the exact one across shapes that cover the blocked
// sweep's corner cases (blocks smaller, equal and larger than the column
// count).
func TestSingularValuesFastAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ws, wsFast SVDWorkspace
	for _, dims := range [][2]int{{1, 1}, {5, 3}, {8, 8}, {17, 9}, {40, 33}, {117, 117}} {
		m, n := dims[0], dims[1]
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, 2*rng.Float64()-1)
			}
		}
		want := ws.SingularValues(a)
		got := wsFast.SingularValuesFast(a)
		if len(got) != len(want) {
			t.Fatalf("%dx%d: %d singular values, want %d", m, n, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+want[i]) {
				t.Fatalf("%dx%d: sv[%d] = %.15g, want %.15g", m, n, i, got[i], want[i])
			}
		}
	}
}
