package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSparse builds an n×n matrix with the given off-diagonal fill and a
// dominant diagonal (so random instances are comfortably nonsingular).
func randSparse(rng *rand.Rand, n int, density float64) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, 4+rng.Float64())
			} else if rng.Float64() < density {
				a.Set(i, j, 2*rng.Float64()-1)
			}
		}
	}
	return a
}

func solveAgree(t *testing.T, tag string, a *Dense, tol float64) {
	t.Helper()
	n := a.Rows()
	dense, err := ComputeLU(a)
	if err != nil {
		t.Fatalf("%s: dense LU: %v", tag, err)
	}
	sparse, err := ComputeSparseLU(a)
	if err != nil {
		t.Fatalf("%s: sparse LU: %v", tag, err)
	}
	rng := rand.New(rand.NewSource(int64(n)))
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	xd := make([]float64, n)
	xs := make([]float64, n)
	dense.SolveInto(xd, b)
	sparse.SolveInto(xs, b)
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > tol*(1+math.Abs(xd[i])) {
			t.Fatalf("%s: SolveInto[%d]: dense %.15g sparse %.15g (diff %.3g)", tag, i, xd[i], xs[i], d)
		}
	}
	dense.SolveTransposeInto(xd, b)
	sparse.SolveTransposeInto(xs, b)
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > tol*(1+math.Abs(xd[i])) {
			t.Fatalf("%s: SolveTransposeInto[%d]: dense %.15g sparse %.15g (diff %.3g)", tag, i, xd[i], xs[i], d)
		}
	}
}

// TestSparseLUMatchesDenseRandom cross-checks sparse and dense LU solves
// to 1e-10 over a sweep of sizes and fills, including fully dense inputs
// (the sparse code must be correct everywhere; the density gate in the LP
// layer is a performance choice, not a correctness one).
func TestSparseLUMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 2, 5, 17, 40, 90} {
		for _, density := range []float64{0.02, 0.1, 0.3, 1.0} {
			a := randSparse(rng, n, density)
			solveAgree(t, "rand", a, 1e-10)
		}
	}
}

// TestSparseLUReuse reuses one receiver across matrices of different sizes
// and checks each refactorization solves its own matrix (the buffer-reuse
// contract Reset promises the refactorization loop).
func TestSparseLUReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var f SparseLU
	for _, n := range []int{30, 7, 64, 64, 12} {
		a := randSparse(rng, n, 0.15)
		if err := f.Reset(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		x := make([]float64, n)
		f.SolveInto(x, b)
		// Residual check: A·x must reproduce b.
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("n=%d: residual row %d: %.3g", n, i, s-b[i])
			}
		}
	}
}

// TestSparseLUPivoting feeds a matrix whose natural-order pivot is zero;
// partial pivoting must reorder rows rather than fail.
func TestSparseLUPivoting(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{
		0, 2, 1,
		1, 0, 3,
		2, 1, 0,
	})
	solveAgree(t, "pivot", a, 1e-12)
}

// TestSparseLUSingular checks the error contract on rank-deficient input:
// ErrSingular, same as the dense LU — the revised solver's routing uses
// it to fall back to the dense factorization path.
func TestSparseLUSingular(t *testing.T) {
	// Zero column.
	a := NewDenseFrom(3, 3, []float64{
		1, 0, 2,
		3, 0, 4,
		5, 0, 6,
	})
	if _, err := ComputeSparseLU(a); err != ErrSingular {
		t.Fatalf("zero column: want ErrSingular, got %v", err)
	}
	// Linearly dependent rows.
	b := NewDenseFrom(3, 3, []float64{
		1, 2, 3,
		2, 4, 6,
		1, 1, 1,
	})
	if _, err := ComputeSparseLU(b); err != ErrSingular {
		t.Fatalf("dependent rows: want ErrSingular, got %v", err)
	}
	if _, err := ComputeLU(b); err != ErrSingular {
		t.Fatalf("dense reference disagrees: %v", err)
	}
}

// TestSparseLUFillBound pins the point of the sparse factorization: a
// banded system's factor stays sparse (fill bounded by the bandwidth)
// instead of the dense n² storage.
func TestSparseLUFillBound(t *testing.T) {
	n := 200
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 4)
		if i > 0 {
			a.Set(i, i-1, -1)
		}
		if i < n-1 {
			a.Set(i, i+1, -1)
		}
	}
	f, err := ComputeSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZ() > 4*n {
		t.Fatalf("tridiagonal fill %d exceeds 4n=%d — the symbolic pass is producing dense fill", f.NNZ(), 4*n)
	}
	solveAgree(t, "band", a, 1e-12)
}
