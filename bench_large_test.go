package gridmtd_test

import (
	"math/rand"
	"testing"

	"gridmtd"
	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/planner"
)

// ---- Large-case benchmarks: dense vs sparse backend ------------------------
//
// These measure the dense→sparse crossover recorded in PERF.md: the same
// dispatch-OPF and B-factorization work through both backends on every
// registered case size. Run with:
//
//	go test -run '^$' -bench 'Backend|IEEE118' -benchtime 1s .

func benchCase(b *testing.B, name string) *gridmtd.Network {
	b.Helper()
	n, err := gridmtd.CaseByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// benchEngineCost measures one dispatch-OPF Cost evaluation (factorization
// + PTDF + LP) through an explicit backend — the per-candidate unit of the
// problem-(4) search, measured through an engine session exactly as the
// search workers run it. On the sparse backend the session carries the
// warm LP basis across iterations (the benchmark's fixed x is the
// best case for it: the basis is optimal after the first solve); the
// perturbed variants below measure the realistic local-search pattern.
func benchEngineCost(b *testing.B, caseName string, backend grid.Backend) {
	n := benchCase(b, caseName)
	eng, err := opf.NewDispatchEngineBackend(n, backend)
	if err != nil {
		b.Fatal(err)
	}
	sess := eng.NewSession()
	x := n.Reactances()
	if _, err := sess.Cost(x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Cost(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPF30DenseBackend(b *testing.B)   { benchEngineCost(b, "ieee30", grid.DenseBackend) }
func BenchmarkOPF30SparseBackend(b *testing.B)  { benchEngineCost(b, "ieee30", grid.SparseBackend) }
func BenchmarkOPF57DenseBackend(b *testing.B)   { benchEngineCost(b, "ieee57", grid.DenseBackend) }
func BenchmarkOPF57SparseBackend(b *testing.B)  { benchEngineCost(b, "ieee57", grid.SparseBackend) }
func BenchmarkOPF118DenseBackend(b *testing.B)  { benchEngineCost(b, "ieee118", grid.DenseBackend) }
func BenchmarkOPF118SparseBackend(b *testing.B) { benchEngineCost(b, "ieee118", grid.SparseBackend) }

// benchEngineCostPerturbed walks the candidate through a pre-drawn cycle
// of nearby D-FACTS settings — the Nelder-Mead access pattern the warm
// start is built for: every solve sees a slightly different PTDF, so the
// sparse path pays real dual/primal pivots instead of a pure basis hit.
func benchEngineCostPerturbed(b *testing.B, caseName string, backend grid.Backend) {
	n := benchCase(b, caseName)
	eng, err := opf.NewDispatchEngineBackend(n, backend)
	if err != nil {
		b.Fatal(err)
	}
	sess := eng.NewSession()
	lo, hi := n.DFACTSBounds()
	rng := rand.New(rand.NewSource(9))
	const cycle = 32
	xs := make([][]float64, cycle)
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	for c := range xs {
		for i := range xd {
			xd[i] += 0.05 * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			if xd[i] < lo[i] {
				xd[i] = lo[i]
			}
			if xd[i] > hi[i] {
				xd[i] = hi[i]
			}
		}
		xs[c] = n.ExpandDFACTS(xd)
	}
	if _, err := sess.Cost(xs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Cost(xs[i%cycle]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPF118DensePerturbed(b *testing.B) {
	benchEngineCostPerturbed(b, "ieee118", grid.DenseBackend)
}
func BenchmarkOPF118WarmPerturbed(b *testing.B) {
	benchEngineCostPerturbed(b, "ieee118", grid.SparseBackend)
}
func BenchmarkOPF57WarmPerturbed(b *testing.B) {
	benchEngineCostPerturbed(b, "ieee57", grid.SparseBackend)
}

// benchBFactor measures the raw backend unit: refactor B_r(x) and build the
// PTDF (the reactance-dependent work of one OPF candidate, without the LP).
func benchBFactor(b *testing.B, caseName string, backend grid.Backend) {
	n := benchCase(b, caseName)
	f := grid.NewBFactorizerBackend(n, backend)
	x := n.Reactances()
	ptdf := mat.NewDense(n.L(), n.N()-1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.Reset(x); err != nil {
			b.Fatal(err)
		}
		if err := f.PTDFInto(ptdf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFactorPTDF30Dense(b *testing.B)   { benchBFactor(b, "ieee30", grid.DenseBackend) }
func BenchmarkBFactorPTDF30Sparse(b *testing.B)  { benchBFactor(b, "ieee30", grid.SparseBackend) }
func BenchmarkBFactorPTDF57Dense(b *testing.B)   { benchBFactor(b, "ieee57", grid.DenseBackend) }
func BenchmarkBFactorPTDF57Sparse(b *testing.B)  { benchBFactor(b, "ieee57", grid.SparseBackend) }
func BenchmarkBFactorPTDF118Dense(b *testing.B)  { benchBFactor(b, "ieee118", grid.DenseBackend) }
func BenchmarkBFactorPTDF118Sparse(b *testing.B) { benchBFactor(b, "ieee118", grid.SparseBackend) }

// BenchmarkGammaIEEE118 measures one cached candidate-γ evaluation on the
// 118-bus system — the other half of the large-case selection cost (the
// 117-state Gram-Schmidt + Jacobi SVD is insensitive to the B backend).
func BenchmarkGammaIEEE118(b *testing.B) {
	n := benchCase(b, "ieee118")
	x := n.Reactances()
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.25*lo[i] + 0.75*hi[i]
	}
	ev := gridmtd.NewGammaEvaluator(n, x)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.GammaDFACTS(xd)
	}
}

// benchGammaBackend measures one cached candidate-γ evaluation through an
// explicit γ backend — the unit the γ-backend layer exists to make cheap.
// The candidate sits at the 75% point of the device box, the same point
// BenchmarkGammaIEEE118 uses.
func benchGammaBackend(b *testing.B, caseName string, gb gridmtd.GammaBackend) {
	n := benchCase(b, caseName)
	x := n.Reactances()
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.25*lo[i] + 0.75*hi[i]
	}
	ev := gridmtd.NewGammaEvaluatorBackend(n, x, gb)
	if got := ev.Backend(); got != gridmtd.EffectiveGammaBackend(gb) {
		b.Fatalf("evaluator degraded to the %v backend", got)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.GammaDFACTS(xd)
	}
}

func BenchmarkGammaBackend118Exact(b *testing.B) {
	benchGammaBackend(b, "ieee118", gridmtd.GammaExact)
}
func BenchmarkGammaBackend118Sparse(b *testing.B) {
	benchGammaBackend(b, "ieee118", gridmtd.GammaSparse)
}
func BenchmarkGammaBackend118Sketch(b *testing.B) {
	benchGammaBackend(b, "ieee118", gridmtd.GammaSketch)
}
func BenchmarkGammaBackend300Exact(b *testing.B) {
	benchGammaBackend(b, "ieee300", gridmtd.GammaExact)
}
func BenchmarkGammaBackend300Sparse(b *testing.B) {
	benchGammaBackend(b, "ieee300", gridmtd.GammaSparse)
}
func BenchmarkGammaBackend300Sketch(b *testing.B) {
	benchGammaBackend(b, "ieee300", gridmtd.GammaSketch)
}

// benchColdSelect measures one cold planner selection — a fresh planner
// per iteration, so nothing is memoized and the measured time is the full
// request: case build, baseline OPF, multi-start search (sketch-γ guided),
// attack sampling/evaluation and the exact γ/η' reporting. This is the
// end-to-end latency PERF.md's cold-selection table records, at the CI
// smoke point (γ_th 0.05, 1 start, 30 evals, 20 attacks, sketch γ).
func benchColdSelect(b *testing.B, caseName string) {
	req := planner.SelectRequest{
		Case: caseName, GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := planner.New(planner.Config{})
		if _, err := p.Select(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdSelect118(b *testing.B) { benchColdSelect(b, "ieee118") }
func BenchmarkColdSelect300(b *testing.B) { benchColdSelect(b, "ieee300") }

// BenchmarkAttackEval118 measures one η'(δ) evaluation of a 200-attack set
// on the 118-bus system through the sketched screening path (sparse-Gram
// residuals with exact re-checks near the decision thresholds) — the
// per-selection attack-evaluation unit the sketch accelerates.
func BenchmarkAttackEval118(b *testing.B) {
	n := benchCase(b, "ieee118")
	xOld := n.Reactances()
	zOld, err := core.OperatingMeasurements(n, xOld)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridmtd.EffectivenessConfig{NumAttacks: 200, Seed: 7, GammaBackend: gridmtd.GammaSketch}
	set, err := gridmtd.SampleAttacks(n, xOld, zOld, cfg)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.25*lo[i] + 0.75*hi[i]
	}
	xNew := n.ExpandDFACTS(xd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.EvaluateAttacks(n, set, xNew, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectMTDIEEE118Quick measures the quick-mode 118-bus selection
// (1 start, 30 evaluations) — the CI smoke's workload.
func BenchmarkSelectMTDIEEE118Quick(b *testing.B) {
	n := benchCase(b, "ieee118")
	x := n.Reactances()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.SelectMTD(n, x, gridmtd.MTDSelectConfig{
			GammaThreshold: 0.05, Starts: 1, MaxEvals: 30, Seed: 1, BaselineCost: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
