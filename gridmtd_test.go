package gridmtd_test

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a case, find the operating point, craft a stealthy
// attack, verify the BDD misses it, apply an MTD, verify detection.
func TestFacadeEndToEnd(t *testing.T) {
	n := gridmtd.NewIEEE14()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	pre, err := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		t.Fatal(err)
	}

	// Attacker crafts a stealthy attack against the current configuration.
	rng := rand.New(rand.NewSource(2))
	atk, err := gridmtd.RandomAttack(rng, n, pre.Reactances, z, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if !gridmtd.IsUndetectable(n, pre.Reactances, atk.A) {
		t.Fatal("crafted attack should bypass the BDD before MTD")
	}

	// Defender applies a designed perturbation.
	sel, err := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
		GammaThreshold: 0.3,
		Starts:         3,
		Seed:           3,
		BaselineCost:   pre.CostPerHour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gridmtd.IsUndetectable(n, sel.Reactances, atk.A) {
		t.Error("attack remained in the new column space after a γ=0.3 MTD")
	}

	// Detection probability is high under the new configuration.
	est, err := gridmtd.NewEstimator(n, sel.Reactances)
	if err != nil {
		t.Fatal(err)
	}
	bdd, err := gridmtd.NewBDD(est, 0.0015, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := est.DetectionProbability(bdd, atk.A)
	if err != nil {
		t.Fatal(err)
	}
	if pd < 0.5 {
		t.Errorf("post-MTD detection probability %v too low", pd)
	}

	// Effectiveness metric agrees.
	eff, err := gridmtd.Effectiveness(n, pre.Reactances, sel.Reactances, z,
		gridmtd.EffectivenessConfig{NumAttacks: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if eff.Gamma < 0.29 {
		t.Errorf("gamma = %v, want >= threshold", eff.Gamma)
	}
	if eff.Eta[0] < 0.5 {
		t.Errorf("eta(0.5) = %v unexpectedly low", eff.Eta[0])
	}
}

func TestFacadePowerFlowHelpers(t *testing.T) {
	n := gridmtd.NewCase4GS()
	pf, err := gridmtd.RunPowerFlow(n, n.Reactances(), n.InjectionsMW([]float64{350, 150}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf.FlowsMW[0]-126.56) > 0.05 {
		t.Errorf("flow = %v, want 126.56", pf.FlowsMW[0])
	}
	z := gridmtd.Measurements(n, n.InjectionsMW([]float64{350, 150}), pf)
	if len(z) != n.M() {
		t.Errorf("len(z) = %d, want %d", len(z), n.M())
	}
	if gridmtd.Norm1(z) <= 0 || gridmtd.Norm2(z) <= 0 {
		t.Error("norms of a live measurement vector must be positive")
	}
}

func TestFacadeGammaAndAngles(t *testing.T) {
	n := gridmtd.NewIEEE14()
	x := n.Reactances()
	// acos roundoff near 1 limits identical-subspace angles to ~1e-7.
	if g := gridmtd.Gamma(n, x, x); g > 1e-6 {
		t.Errorf("Gamma(x, x) = %v, want ~0", g)
	}
	angles := gridmtd.PrincipalAngles(n, x, x)
	if len(angles) != n.N()-1 {
		t.Fatalf("got %d principal angles, want %d", len(angles), n.N()-1)
	}
	// With D-FACTS on a strict subset of branches the smallest principal
	// angle is structurally zero for any perturbation — the reproduction
	// finding that pins γ to the LARGEST angle (see DESIGN.md).
	xNew := append([]float64(nil), x...)
	for _, i := range n.DFACTSIndices() {
		xNew[i] = n.Branches[i].XMax
	}
	perturbed := gridmtd.PrincipalAngles(n, x, xNew)
	if perturbed[0] > 1e-6 {
		t.Errorf("smallest principal angle %v, structurally expected 0", perturbed[0])
	}
	if perturbed[len(perturbed)-1] < 0.1 {
		t.Errorf("largest principal angle %v unexpectedly small", perturbed[len(perturbed)-1])
	}
}

func TestFacadeLoadHelpers(t *testing.T) {
	shape := gridmtd.NYWinterWeekday()
	if len(shape) != 24 {
		t.Fatalf("profile length %d", len(shape))
	}
	factors, err := gridmtd.ScaleToPeak(shape, 259, 220)
	if err != nil {
		t.Fatal(err)
	}
	if len(factors) != 24 {
		t.Fatal("factor length")
	}
	if gridmtd.HourLabel(17) != "6PM" {
		t.Error("HourLabel wrong")
	}
}

func TestFacadeOperationalCost(t *testing.T) {
	if got := gridmtd.OperationalCost(100, 102); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("OperationalCost = %v", got)
	}
}
