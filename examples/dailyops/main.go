// Dailyops runs the paper's Section VII-C operating day: the IEEE 14-bus
// system follows a winter-weekday load trace; every hour the operator
// re-solves the OPF, tunes the MTD's γ threshold for η'(0.9) ≥ 0.9 against
// an attacker whose knowledge is one hour stale, and pays the resulting
// operational premium. The output shows the paper's Figs. 10-11 behaviour:
// the MTD cost tracks congestion (peak hours cost more), the natural
// configuration drift γ(H_t, H_t') stays near zero, and
// γ(H_t, H'_t') ≈ γ(H_t', H'_t').
//
// Run with: go run ./examples/dailyops [-hours 6] [-case ieee57]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dailyops: ")
	hours := flag.Int("hours", 8, "number of hours to simulate (max 24, sampled across the day)")
	caseName := flag.String("case", "ieee14", "registered case to operate")
	flag.Parse()

	// Sample the requested number of hours evenly across the 24-hour trace.
	count := *hours
	if count < 1 {
		count = 1
	}
	if count > 24 {
		count = 24
	}
	idx := make([]int, 0, count)
	for i := 0; i < count; i++ {
		idx = append(idx, i*24/count)
	}

	// The whole operating day is one scenario: the runner builds the
	// dispatch-OPF engine once for the day instead of once per hour. The
	// paper's 220 MW peak is ~85% of the 14-bus base load; the scenario
	// layer applies the same peak-to-base ratio to every case by default.
	res, err := gridmtd.RunScenario(gridmtd.Scenario{
		Kind:  gridmtd.ScenarioDaySweep,
		Case:  *caseName,
		Hours: idx,
		Tune: gridmtd.TuneConfig{
			TargetDelta: 0.9,
			TargetEta:   0.9,
			Iterations:  4,
			Effectiveness: gridmtd.EffectivenessConfig{
				NumAttacks: 300,
			},
			Select: gridmtd.MTDSelectConfig{Starts: 3},
		},
		OPFStarts: 5,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s  %10s  %12s  %12s  %10s  %10s  %10s  %8s\n",
		"hour", "load (MW)", "C_OPF ($/h)", "C'_OPF ($/h)", "premium", "γ(Ht,Ht')", "γ(Ht,H't')", "η'(0.9)")
	var totalBase, totalMTD float64
	for _, r := range res.Rows {
		fmt.Printf("%6s  %10.1f  %12.1f  %12.1f  %9.2f%%  %10.4f  %10.4f  %8.2f\n",
			gridmtd.HourLabel(r.Hour), r.TotalLoadMW, r.BaselineCost, r.MTDCost,
			100*r.CostIncrease, r.GammaOldNew, r.Gamma, r.Eta[0])
		totalBase += r.BaselineCost
		totalMTD += r.MTDCost
	}
	fmt.Printf("\nday total: %.0f $ with MTD vs %.0f $ without (+%.2f%%) — the insurance premium\n",
		totalMTD, totalBase, 100*(totalMTD-totalBase)/totalBase)
	fmt.Println("paper's reference point: a single successful FDI attack can raise OPF cost by up to 28%")
}
