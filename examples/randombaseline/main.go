// Randombaseline contrasts the paper's designed MTD with the random
// reactance perturbations of prior work (the Figs. 7-8 comparison): random
// ±2% keys achieve tiny subspace separation with wildly variable
// effectiveness, while the γ-constrained design delivers a guaranteed
// detection level at known cost. Both sides are scenarios — a RandomKeys
// study for the prior-work keyspace and a single-point γ sweep for the
// designed MTD — sharing the runner's per-case engines.
//
// Run with: go run ./examples/randombaseline [-case ieee57]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("randombaseline: ")
	caseName := flag.String("case", "ieee14", "registered case to compare on")
	flag.Parse()

	// Resolve the case once and hand the same network to both scenarios:
	// the runner keys its dispatch-engine cache on the pointer, so the
	// keyspace study and the designed-MTD selection below genuinely share
	// one engine.
	net, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	runner := gridmtd.NewScenarioRunner()
	attackCfg := gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2}

	// Prior work's keyspace: random D-FACTS settings whose OPF cost stays
	// within 2% of the optimum.
	const trials = 10
	keys, err := runner.Run(gridmtd.Scenario{
		Kind:          gridmtd.ScenarioRandomKeys,
		Net:           net,
		Trials:        trials,
		CostBudget:    0.02,
		OPFStarts:     8,
		OPFSeed:       1,
		Seed:          3,
		Effectiveness: attackCfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("random keyspace perturbations (2% OPF-cost budget, prior work):")
	fmt.Printf("%8s  %8s  %10s  %10s  %12s\n", "trial", "γ", "η'(0.5)", "η'(0.9)", "undetectable")
	meets := 0
	for _, r := range keys.Rows {
		if r.Eta[2] >= 0.9 {
			meets++
		}
		fmt.Printf("%8d  %8.4f  %10.3f  %10.3f  %11.1f%%\n",
			r.Trial, r.Gamma, r.Eta[0], r.Eta[2], 100*r.Undetectable)
	}
	fmt.Printf("keys achieving η'(0.9) ≥ 0.9: %d/%d\n\n", meets, trials)

	// Naive literal ±2% reactance jitter: even weaker (an ablation of the
	// keyspace reading; γ stays near zero and nothing is ever detected).
	n, pre := keys.Net, keys.Baseline
	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	attacks, err := gridmtd.SampleAttacks(n, pre.Reactances, z, attackCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("naive ±2% reactance jitter (ablation):")
	// Historically the jitter trials continued the keyspace sampler's RNG
	// stream; replay the draws the scenario consumed (one box sample of
	// len(DFACTSIndices) floats per draw) so the ablation rows stay
	// identical to the pre-scenario program.
	rng := rand.New(rand.NewSource(3))
	consumed := 0
	for _, r := range keys.Rows {
		consumed += r.Draws
	}
	for i := 0; i < consumed*len(n.DFACTSIndices()); i++ {
		rng.Float64()
	}
	operating := n.WithReactances(pre.Reactances)
	for trial := 1; trial <= 3; trial++ {
		xRand, err := gridmtd.RandomPerturbation(rng, operating, 0.02)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := gridmtd.EvaluateAttacks(n, attacks, xRand, attackCfg)
		if err != nil {
			log.Fatal(err)
		}
		eta05, _ := eff.EtaAt(0.5)
		fmt.Printf("%8d  γ = %.4f, η'(0.5) = %.3f\n", trial, eff.Gamma, eta05)
	}
	fmt.Println()

	// This paper: the designed, γ-constrained perturbation. 0.35 rad is
	// within the 14-bus hardware's reach; larger cases with sparser
	// D-FACTS coverage fall back to their best operable design.
	gammaTh := 0.35
	designed, err := runner.Run(gridmtd.Scenario{
		Kind:            gridmtd.ScenarioGammaSweep,
		Net:             net,
		GammaGrid:       []float64{gammaTh},
		CapWithMaxGamma: true,
		SelectStarts:    6,
		Seed:            4,
		OPFStarts:       8,
		OPFSeed:         1,
		Effectiveness:   attackCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(designed.Rows) == 0 {
		log.Fatalf("no operable MTD design on case %s", *caseName)
	}
	sel := designed.Rows[len(designed.Rows)-1]
	if designed.Exhausted {
		fmt.Printf("γ_th = %.2f is beyond this case's D-FACTS reach; using the max-γ design\n", gammaTh)
		gammaTh = sel.Gamma
	}
	fmt.Printf("designed MTD (problem (4), γ_th = %.2f):\n", gammaTh)
	fmt.Printf("γ = %.4f, η'(0.5) = %.3f, η'(0.9) = %.3f, undetectable %.1f%%, cost +%.2f%%\n",
		sel.Gamma, sel.Eta[0], sel.Eta[2], 100*sel.Undetectable, 100*sel.CostIncrease)
}
