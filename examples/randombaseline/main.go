// Randombaseline contrasts the paper's designed MTD with the random
// reactance perturbations of prior work (the Figs. 7-8 comparison): random
// ±2% keys achieve tiny subspace separation with wildly variable
// effectiveness, while the γ-constrained design delivers a guaranteed
// detection level at known cost.
//
// Run with: go run ./examples/randombaseline [-case ieee57]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("randombaseline: ")
	caseName := flag.String("case", "ieee14", "registered case to compare on")
	flag.Parse()

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	attacks, err := gridmtd.SampleAttacks(n, pre.Reactances, z,
		gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(x []float64) (*gridmtd.EffectivenessResult, error) {
		return gridmtd.EvaluateAttacks(n, attacks, x,
			gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2})
	}

	// Prior work's keyspace: random D-FACTS settings whose OPF cost stays
	// within 2% of the optimum.
	fmt.Println("random keyspace perturbations (2% OPF-cost budget, prior work):")
	fmt.Printf("%8s  %8s  %10s  %10s  %12s\n", "trial", "γ", "η'(0.5)", "η'(0.9)", "undetectable")
	rng := rand.New(rand.NewSource(3))
	const trials = 10
	meets := 0
	for trial := 1; trial <= trials; trial++ {
		xRand, _, _, err := gridmtd.RandomKeyWithinCost(rng, n, pre.CostPerHour, 0.02, 0)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := evaluate(xRand)
		if err != nil {
			log.Fatal(err)
		}
		eta05, _ := eff.EtaAt(0.5)
		eta09, _ := eff.EtaAt(0.9)
		if eta09 >= 0.9 {
			meets++
		}
		fmt.Printf("%8d  %8.4f  %10.3f  %10.3f  %11.1f%%\n",
			trial, eff.Gamma, eta05, eta09, 100*eff.UndetectableFraction)
	}
	fmt.Printf("keys achieving η'(0.9) ≥ 0.9: %d/%d\n\n", meets, trials)

	// Naive literal ±2% reactance jitter: even weaker (an ablation of the
	// keyspace reading; γ stays near zero and nothing is ever detected).
	fmt.Println("naive ±2% reactance jitter (ablation):")
	operating := n.WithReactances(pre.Reactances)
	for trial := 1; trial <= 3; trial++ {
		xRand, err := gridmtd.RandomPerturbation(rng, operating, 0.02)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := evaluate(xRand)
		if err != nil {
			log.Fatal(err)
		}
		eta05, _ := eff.EtaAt(0.5)
		fmt.Printf("%8d  γ = %.4f, η'(0.5) = %.3f\n", trial, eff.Gamma, eta05)
	}
	fmt.Println()

	// This paper: the designed, γ-constrained perturbation. 0.35 rad is
	// within the 14-bus hardware's reach; larger cases with sparser
	// D-FACTS coverage fall back to their best operable design.
	gammaTh := 0.35
	sel, err := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
		GammaThreshold: gammaTh,
		Starts:         6,
		Seed:           4,
		BaselineCost:   pre.CostPerHour,
	})
	fellBack := false
	if errors.Is(err, gridmtd.ErrGammaUnreachable) {
		fmt.Printf("γ_th = %.2f is beyond this case's D-FACTS reach; using the max-γ design\n", gammaTh)
		sel, err = gridmtd.MaxGamma(n, pre.Reactances, gridmtd.MaxGammaConfig{
			Starts: 6, Seed: 4, BaselineCost: pre.CostPerHour,
		})
		fellBack = true
	}
	if err != nil {
		log.Fatal(err)
	}
	if fellBack {
		gammaTh = sel.Gamma
	}
	eff, err := evaluate(sel.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	eta05, _ := eff.EtaAt(0.5)
	eta09, _ := eff.EtaAt(0.9)
	fmt.Printf("designed MTD (problem (4), γ_th = %.2f):\n", gammaTh)
	fmt.Printf("γ = %.4f, η'(0.5) = %.3f, η'(0.9) = %.3f, undetectable %.1f%%, cost +%.2f%%\n",
		eff.Gamma, eta05, eta09, 100*eff.UndetectableFraction, 100*sel.CostIncrease)
}
