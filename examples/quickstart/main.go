// Quickstart: the full MTD story on the IEEE 14-bus system in one program.
//
//  1. Solve the OPF to find the grid's operating point.
//  2. Play the attacker: craft a stealthy false-data injection a = H·c that
//     the bad data detector cannot see, and show that it biases the state
//     estimate while keeping the residual at the noise floor.
//  3. Play the defender: apply a designed MTD reactance perturbation
//     (γ ≥ 0.3) and show the same attack now lights up the detector.
//  4. Report the insurance premium: the MTD's operational cost.
//
// The operating point, the MTD selection and the population-level η'(δ)
// evaluation are one single-point γ-sweep scenario; the attack
// demonstration plays out against its results.
//
// Run with: go run ./examples/quickstart [-case ieee118] [-gamma 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")
	caseName := flag.String("case", "ieee14", "registered case to run the story on")
	gammaTh := flag.Float64("gamma", 0.3, "γ threshold for the designed MTD")
	flag.Parse()

	probe, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}

	// Search budgets: the paper-sized cases afford the full multi-start
	// protocol; on the ≥57-bus cases a γ evaluation costs milliseconds
	// rather than microseconds, so the demo trims the budget (results stay
	// deterministic, just less exhaustively optimized).
	starts, maxEvals := 6, 0
	if probe.N() >= 50 {
		starts, maxEvals = 2, 30*len(probe.DFACTSIndices())
	}

	// One scenario computes the whole defender side: the pre-perturbation
	// problem-(1) operating point, the γ-constrained selection (falling
	// back to the hardware's best design when the threshold is out of
	// reach) and the population-level effectiveness against 200 random
	// attacks — all on one shared dispatch engine.
	res, err := gridmtd.RunScenario(gridmtd.Scenario{
		Kind:            gridmtd.ScenarioGammaSweep,
		Case:            *caseName,
		GammaGrid:       []float64{*gammaTh},
		CapWithMaxGamma: true,
		SelectStarts:    starts,
		MaxEvals:        maxEvals,
		Seed:            2,
		OPFStarts:       starts + 2,
		OPFSeed:         1,
		Effectiveness:   gridmtd.EffectivenessConfig{NumAttacks: 200, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	n, pre := res.Net, res.Baseline
	if len(res.Rows) == 0 {
		log.Fatalf("no operable MTD design on case %s", *caseName)
	}
	mtd := res.Rows[len(res.Rows)-1]

	fmt.Printf("case %s: %d buses, %d branches, %.0f MW load\n",
		n.Name, n.N(), n.L(), n.TotalLoadMW())
	fmt.Printf("pre-perturbation OPF cost: %.1f $/h\n\n", pre.CostPerHour)

	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The attacker learned H and crafts a stealthy attack sized at 8% of
	// the measurement magnitude (the paper's scaling).
	rng := rand.New(rand.NewSource(7))
	atk, err := gridmtd.RandomAttack(rng, n, pre.Reactances, z, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	est, err := gridmtd.NewEstimator(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	const (
		sigma = 0.0015 // measurement noise, per-unit
		alpha = 5e-4   // BDD false-positive rate
	)
	bdd, err := gridmtd.NewBDD(est, sigma, alpha)
	if err != nil {
		log.Fatal(err)
	}

	// Attack residual with no noise: identically zero for a = Hc.
	zAttacked := make([]float64, len(z))
	for i := range z {
		zAttacked[i] = z[i] + atk.A[i]
	}
	fmt.Printf("attack: ‖a‖₁/‖z‖₁ = %.3f, state bias ‖c‖ = %.4f rad\n",
		gridmtd.Norm1(atk.A)/gridmtd.Norm1(z), gridmtd.Norm2(atk.C))
	fmt.Printf("BDD residual under attack: %.2e (threshold τ = %.2e) -> %s\n",
		est.Residual(zAttacked), bdd.Tau, verdict(bdd.Detect(est.Residual(zAttacked))))
	pd, err := est.DetectionProbability(bdd, atk.A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection probability with noise: %.4f (= false-positive rate)\n\n", pd)

	// 3. The defender's perturbation, from the scenario above.
	if res.Exhausted {
		fmt.Printf("γ_th = %.2f is beyond this case's D-FACTS reach; using the max-γ design\n", *gammaTh)
	}
	fmt.Printf("MTD applied: γ(H, H') = %.3f rad\n", mtd.Gamma)

	estNew, err := gridmtd.NewEstimator(n, mtd.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	bddNew, err := gridmtd.NewBDD(estNew, sigma, alpha)
	if err != nil {
		log.Fatal(err)
	}
	pdNew, err := estNew.DetectionProbability(bddNew, atk.A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same attack after MTD: residual component %.4f -> detection probability %.4f\n",
		estNew.ResidualComponent(atk.A), pdNew)
	fmt.Printf("stealthy by Proposition 1? %v\n\n", gridmtd.IsUndetectable(n, mtd.Reactances, atk.A))

	// 4. The premium.
	fmt.Printf("MTD operational cost: %.1f $/h vs %.1f $/h baseline (+%.2f%%)\n",
		mtd.MTDCost, mtd.BaselineCost, 100*mtd.CostIncrease)

	// Population view: 200 random attacks (evaluated by the scenario).
	for i, d := range mtd.Deltas {
		fmt.Printf("η'(%.2f) = %.2f  ", d, mtd.Eta[i])
	}
	fmt.Println()
}

func verdict(detected bool) string {
	if detected {
		return "ALARM"
	}
	return "no alarm (stealthy)"
}
