// Quickstart: the full MTD story on the IEEE 14-bus system in one program.
//
//  1. Solve the OPF to find the grid's operating point.
//  2. Play the attacker: craft a stealthy false-data injection a = H·c that
//     the bad data detector cannot see, and show that it biases the state
//     estimate while keeping the residual at the noise floor.
//  3. Play the defender: apply a designed MTD reactance perturbation
//     (γ ≥ 0.3) and show the same attack now lights up the detector.
//  4. Report the insurance premium: the MTD's operational cost.
//
// Run with: go run ./examples/quickstart [-case ieee118] [-gamma 0.3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")
	caseName := flag.String("case", "ieee14", "registered case to run the story on")
	gammaTh := flag.Float64("gamma", 0.3, "γ threshold for the designed MTD")
	flag.Parse()

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case %s: %d buses, %d branches, %.0f MW load\n",
		n.Name, n.N(), n.L(), n.TotalLoadMW())

	// Search budgets: the paper-sized cases afford the full multi-start
	// protocol; on the ≥57-bus cases a γ evaluation costs milliseconds
	// rather than microseconds, so the demo trims the budget (results stay
	// deterministic, just less exhaustively optimized).
	starts, maxEvals := 6, 0
	if n.N() >= 50 {
		starts, maxEvals = 2, 30*len(n.DFACTSIndices())
	}

	// 1. Operating point: dispatch and D-FACTS reactances from the OPF.
	pre, err := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: starts + 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-perturbation OPF cost: %.1f $/h\n\n", pre.CostPerHour)

	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The attacker learned H and crafts a stealthy attack sized at 8% of
	// the measurement magnitude (the paper's scaling).
	rng := rand.New(rand.NewSource(7))
	atk, err := gridmtd.RandomAttack(rng, n, pre.Reactances, z, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	est, err := gridmtd.NewEstimator(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	const (
		sigma = 0.0015 // measurement noise, per-unit
		alpha = 5e-4   // BDD false-positive rate
	)
	bdd, err := gridmtd.NewBDD(est, sigma, alpha)
	if err != nil {
		log.Fatal(err)
	}

	// Attack residual with no noise: identically zero for a = Hc.
	zAttacked := make([]float64, len(z))
	for i := range z {
		zAttacked[i] = z[i] + atk.A[i]
	}
	fmt.Printf("attack: ‖a‖₁/‖z‖₁ = %.3f, state bias ‖c‖ = %.4f rad\n",
		gridmtd.Norm1(atk.A)/gridmtd.Norm1(z), gridmtd.Norm2(atk.C))
	fmt.Printf("BDD residual under attack: %.2e (threshold τ = %.2e) -> %s\n",
		est.Residual(zAttacked), bdd.Tau, verdict(bdd.Detect(est.Residual(zAttacked))))
	pd, err := est.DetectionProbability(bdd, atk.A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection probability with noise: %.4f (= false-positive rate)\n\n", pd)

	// 3. The defender perturbs the D-FACTS reactances with γ >= γ_th. If
	// the requested threshold is beyond the hardware's reach on this case,
	// fall back to the best operable design (MaxGamma).
	sel, err := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
		GammaThreshold: *gammaTh,
		Starts:         starts,
		MaxEvals:       maxEvals,
		Seed:           2,
		BaselineCost:   pre.CostPerHour,
	})
	if errors.Is(err, gridmtd.ErrGammaUnreachable) {
		fmt.Printf("γ_th = %.2f is beyond this case's D-FACTS reach; using the max-γ design\n", *gammaTh)
		sel, err = gridmtd.MaxGamma(n, pre.Reactances, gridmtd.MaxGammaConfig{
			Starts: starts, Seed: 2, BaselineCost: pre.CostPerHour,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTD applied: γ(H, H') = %.3f rad\n", sel.Gamma)

	estNew, err := gridmtd.NewEstimator(n, sel.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	bddNew, err := gridmtd.NewBDD(estNew, sigma, alpha)
	if err != nil {
		log.Fatal(err)
	}
	pdNew, err := estNew.DetectionProbability(bddNew, atk.A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same attack after MTD: residual component %.4f -> detection probability %.4f\n",
		estNew.ResidualComponent(atk.A), pdNew)
	fmt.Printf("stealthy by Proposition 1? %v\n\n", gridmtd.IsUndetectable(n, sel.Reactances, atk.A))

	// 4. The premium.
	fmt.Printf("MTD operational cost: %.1f $/h vs %.1f $/h baseline (+%.2f%%)\n",
		sel.OPF.CostPerHour, sel.BaselineCost, 100*sel.CostIncrease)

	// Population view: 200 random attacks.
	eff, err := gridmtd.Effectiveness(n, pre.Reactances, sel.Reactances, z,
		gridmtd.EffectivenessConfig{NumAttacks: 200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range eff.Deltas {
		fmt.Printf("η'(%.2f) = %.2f  ", d, eff.Eta[i])
		_ = i
	}
	fmt.Println()
}

func verdict(detected bool) string {
	if detected {
		return "ALARM"
	}
	return "no alarm (stealthy)"
}
