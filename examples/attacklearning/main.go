// Attacklearning simulates the arms race that motivates the MTD's hourly
// update interval (paper Section IV-A): an eavesdropping attacker estimates
// the column space of the measurement matrix from observed SCADA data
// (subspace method), the estimate improving with every sample — until the
// defender perturbs the reactances and invalidates it.
//
// Run with: go run ./examples/attacklearning [-case ieee118]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacklearning: ")
	caseName := flag.String("case", "ieee14", "registered case the attacker eavesdrops on")
	flag.Parse()

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	x := n.Reactances()

	fmt.Println("attacker's subspace estimation error vs samples observed")
	fmt.Printf("%10s  %18s\n", "samples", "γ(estimate, true)")
	var last *gridmtd.LearningOutcome
	for _, k := range []int{15, 30, 60, 120, 250, 500, 1000} {
		out, err := gridmtd.SimulateLearning(n, x, gridmtd.LearningConfig{
			Samples:  k,
			Sigma:    0.0015,
			JitterMW: 2,
			Seed:     5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %18.4f\n", k, out.SubspaceError)
		last = out
	}
	fmt.Println("\n(the paper estimates 500-1000 samples for a usable model, i.e. hours of")
	fmt.Println(" eavesdropping at SCADA rates — hence hourly MTD updates outpace the attacker)")

	// Now the defender moves: a max-γ perturbation.
	sel, err := gridmtd.MaxGamma(n, x, gridmtd.MaxGammaConfig{Starts: 4, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndefender perturbs reactances: γ(H, H') = %.3f\n", sel.Gamma)

	// The attacker's hard-won estimate is now stale: its angle to the NEW
	// column space is large again.
	angles := gridmtd.PrincipalAngles(n, x, sel.Reactances)
	fmt.Printf("principal angles old-vs-new span %.4f .. %.4f rad\n",
		angles[0], angles[len(angles)-1])
	if last != nil {
		g := gridmtd.LearnedModelGamma(n, sel.Reactances, last)
		fmt.Printf("attacker's learned model vs new configuration: γ = %.3f -> %s\n",
			g, staleness(g))
	}
}

func staleness(gamma float64) string {
	if gamma > 0.2 {
		return "stale: prior attacks now expose themselves"
	}
	return "still mostly valid"
}
