// Attacklearning simulates the arms race that motivates the MTD's hourly
// update interval (paper Section IV-A): an eavesdropping attacker estimates
// the column space of the measurement matrix from observed SCADA data
// (subspace method), the estimate improving with every sample — until the
// defender perturbs the reactances and invalidates it. The curve and the
// staleness probe are one Learning scenario.
//
// Run with: go run ./examples/attacklearning [-case ieee118]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacklearning: ")
	caseName := flag.String("case", "ieee14", "registered case the attacker eavesdrops on")
	flag.Parse()

	res, err := gridmtd.RunScenario(gridmtd.Scenario{
		Kind:          gridmtd.ScenarioLearning,
		Case:          *caseName,
		SampleGrid:    []int{15, 30, 60, 120, 250, 500, 1000},
		LearnSigma:    0.0015,
		LearnJitterMW: 2,
		Seed:          5,
		ProbeStarts:   4,
		ProbeSeed:     6,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := res.Net

	fmt.Println("attacker's subspace estimation error vs samples observed")
	fmt.Printf("%10s  %18s\n", "samples", "γ(estimate, true)")
	for _, r := range res.Rows {
		fmt.Printf("%10d  %18.4f\n", r.Samples, r.SubspaceError)
	}
	fmt.Println("\n(the paper estimates 500-1000 samples for a usable model, i.e. hours of")
	fmt.Println(" eavesdropping at SCADA rates — hence hourly MTD updates outpace the attacker)")

	// Now the defender moves: the scenario's max-γ perturbation.
	sel := res.Learning.Selection
	fmt.Printf("\ndefender perturbs reactances: γ(H, H') = %.3f\n", sel.Gamma)

	// The attacker's hard-won estimate is now stale: its angle to the NEW
	// column space is large again.
	angles := gridmtd.PrincipalAngles(n, n.Reactances(), sel.Reactances)
	fmt.Printf("principal angles old-vs-new span %.4f .. %.4f rad\n",
		angles[0], angles[len(angles)-1])
	if res.Learning.Last != nil {
		g := res.Learning.Stale
		fmt.Printf("attacker's learned model vs new configuration: γ = %.3f -> %s\n",
			g, staleness(g))
	}
}

func staleness(gamma float64) string {
	if gamma > 0.2 {
		return "stale: prior attacks now expose themselves"
	}
	return "still mostly valid"
}
