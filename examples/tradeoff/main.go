// Tradeoff sweeps the γ threshold of the MTD selection problem and prints
// the cost-benefit frontier of the paper's Fig. 9: how much operational
// cost buys how much attack-detection effectiveness. Use it to pick a γ
// threshold for your own risk appetite.
//
// Run with: go run ./examples/tradeoff [-case ieee118]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	caseName := flag.String("case", "ieee14", "registered case to sweep")
	flag.Parse()

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	// Evening-peak loading makes congestion (and hence MTD cost) visible;
	// the paper's 220 MW peak is ~85% of the 14-bus base load, and the same
	// ratio carries to the other cases.
	factors, err := gridmtd.ScaleToPeak(gridmtd.NYWinterWeekday(), n.TotalLoadMW(), 0.85*n.TotalLoadMW())
	if err != nil {
		log.Fatal(err)
	}

	// The frontier is one γ-sweep scenario at the 6 PM operating point:
	// one shared dispatch-OPF engine and γ engine serve the operating-point
	// OPF and every sweep selection, each point warm-starting the next.
	var grid []float64
	for gth := 0.05; gth <= 0.45+1e-9; gth += 0.05 {
		grid = append(grid, gth)
	}
	res, err := gridmtd.RunScenario(gridmtd.Scenario{
		Kind:          gridmtd.ScenarioGammaSweep,
		Case:          *caseName,
		LoadScale:     factors[17], // 6 PM
		GammaGrid:     grid,
		Effectiveness: gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2},
		SelectStarts:  6,
		Seed:          3,
		OPFStarts:     8,
		OPFSeed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 PM operating point: load %.0f MW, no-MTD cost %.1f $/h\n\n",
		res.Net.TotalLoadMW(), res.Baseline.CostPerHour)
	fmt.Printf("%8s  %8s  %10s  %10s  %12s\n", "γ_th", "γ", "η'(0.9)", "η'(0.95)", "cost premium")

	for i, r := range res.Rows {
		fmt.Printf("%8.2f  %8.3f  %10.3f  %10.3f  %11.2f%%\n",
			grid[i], r.Gamma, r.Eta[2], r.Eta[3], 100*r.CostIncrease)
	}
	if res.Exhausted {
		fmt.Printf("%8.2f  -- beyond the D-FACTS hardware's reach --\n", res.ExhaustedAt)
	}
}
