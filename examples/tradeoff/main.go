// Tradeoff sweeps the γ threshold of the MTD selection problem and prints
// the cost-benefit frontier of the paper's Fig. 9: how much operational
// cost buys how much attack-detection effectiveness. Use it to pick a γ
// threshold for your own risk appetite.
//
// Run with: go run ./examples/tradeoff [-case ieee118]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"gridmtd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	caseName := flag.String("case", "ieee14", "registered case to sweep")
	flag.Parse()

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	// Evening-peak loading makes congestion (and hence MTD cost) visible;
	// the paper's 220 MW peak is ~85% of the 14-bus base load, and the same
	// ratio carries to the other cases.
	factors, err := gridmtd.ScaleToPeak(gridmtd.NYWinterWeekday(), n.TotalLoadMW(), 0.85*n.TotalLoadMW())
	if err != nil {
		log.Fatal(err)
	}
	n.ScaleLoads(factors[17]) // 6 PM

	pre, err := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	z, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		log.Fatal(err)
	}
	attacks, err := gridmtd.SampleAttacks(n, pre.Reactances, z,
		gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 PM operating point: load %.0f MW, no-MTD cost %.1f $/h\n\n",
		n.TotalLoadMW(), pre.CostPerHour)
	fmt.Printf("%8s  %8s  %10s  %10s  %12s\n", "γ_th", "γ", "η'(0.9)", "η'(0.95)", "cost premium")

	var warm [][]float64
	for gth := 0.05; gth <= 0.45; gth += 0.05 {
		sel, err := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
			GammaThreshold: gth,
			Starts:         6,
			Seed:           3,
			BaselineCost:   pre.CostPerHour,
			WarmStarts:     warm,
		})
		if err != nil {
			if errors.Is(err, gridmtd.ErrGammaUnreachable) {
				fmt.Printf("%8.2f  -- beyond the D-FACTS hardware's reach --\n", gth)
				break
			}
			log.Fatal(err)
		}
		eff, err := gridmtd.EvaluateAttacks(n, attacks, sel.Reactances,
			gridmtd.EffectivenessConfig{NumAttacks: 400, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		eta09, _ := eff.EtaAt(0.9)
		eta095, _ := eff.EtaAt(0.95)
		fmt.Printf("%8.2f  %8.3f  %10.3f  %10.3f  %11.2f%%\n",
			gth, eff.Gamma, eta09, eta095, 100*sel.CostIncrease)
		warm = [][]float64{n.DFACTSSetting(sel.Reactances)}
	}
}
