package gridmtd_test

import (
	"testing"
	"time"

	"gridmtd/internal/planner"
)

// coldSelectBudget is 2x the worst cold ieee118 selection latency recorded
// in PERF.md's PR 6 table (103-140 ms on the 1-core reference box at the
// CI smoke point). The headroom absorbs runner noise; a regression back
// toward the 0.6 s tableau-resolve floor still trips it by a wide margin.
const coldSelectBudget = 280 * time.Millisecond

// TestColdSelectLatencyBudget holds the cold 118-bus planner selection —
// fresh planner, nothing memoized, sketch-γ backend — under its recorded
// latency budget. Best-of-three so a single scheduler hiccup on a shared
// runner doesn't fail the build.
func TestColdSelectLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee118", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelectBudget {
			break
		}
	}
	t.Logf("cold ieee118 selection: best %v (budget %v)", best, coldSelectBudget)
	if best > coldSelectBudget {
		t.Errorf("cold ieee118 selection took %v, budget %v — the crash-basis/"+
			"partial-PTDF cold path has regressed", best, coldSelectBudget)
	}
}

// coldSelect300Budget is 2x the best cold ieee300 selection recorded in
// PERF.md's PR 7 table (~1.2 s on the 1-core reference box at the CI smoke
// point, down from ~2.9 s before the pricing/sparse-LU/estimator-reuse
// work). A regression in any of the three PR 7 stages — steepest-edge
// pricing, the sparse working-matrix factorization or the rank-structured
// estimator rebuild — lands well above this line.
const coldSelect300Budget = 2500 * time.Millisecond

// TestColdSelect300LatencyBudget holds the cold 300-bus planner selection
// under its recorded budget, best-of-three like the 118-bus assertion.
func TestColdSelect300LatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelect300Budget {
			break
		}
	}
	t.Logf("cold ieee300 selection: best %v (budget %v)", best, coldSelect300Budget)
	if best > coldSelect300Budget {
		t.Errorf("cold ieee300 selection took %v, budget %v — a PR 7 stage "+
			"(pricing, sparse LU, estimator reuse) has regressed", best, coldSelect300Budget)
	}
}
