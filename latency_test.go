package gridmtd_test

import (
	"testing"
	"time"

	"gridmtd/internal/planner"
	"gridmtd/internal/planner/diskcache"
)

// coldSelectBudget is 2x the worst cold ieee118 selection latency recorded
// in PERF.md's PR 6 table (103-140 ms on the 1-core reference box at the
// CI smoke point). The headroom absorbs runner noise; a regression back
// toward the 0.6 s tableau-resolve floor still trips it by a wide margin.
const coldSelectBudget = 280 * time.Millisecond

// TestColdSelectLatencyBudget holds the cold 118-bus planner selection —
// fresh planner, nothing memoized, sketch-γ backend — under its recorded
// latency budget. Best-of-three so a single scheduler hiccup on a shared
// runner doesn't fail the build.
func TestColdSelectLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee118", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelectBudget {
			break
		}
	}
	t.Logf("cold ieee118 selection: best %v (budget %v)", best, coldSelectBudget)
	if best > coldSelectBudget {
		t.Errorf("cold ieee118 selection took %v, budget %v — the crash-basis/"+
			"partial-PTDF cold path has regressed", best, coldSelectBudget)
	}
}

// coldSelect300Budget is 2x the best cold ieee300 selection recorded in
// PERF.md's PR 8 table (~0.89 s on the 1-core reference box, down from
// ~1.2 s at PR 7 via the dispatch-solve memo, the Farkas pre-screen and
// the screened restarts). A regression in any stage — PR 7's pricing,
// sparse LU and estimator reuse, or PR 8's solve-volume cuts — lands
// well above this line.
const coldSelect300Budget = 1800 * time.Millisecond

// TestColdSelect300LatencyBudget holds the cold 300-bus planner selection
// under its recorded budget, best-of-three like the 118-bus assertion.
func TestColdSelect300LatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelect300Budget {
			break
		}
	}
	t.Logf("cold ieee300 selection: best %v (budget %v)", best, coldSelect300Budget)
	if best > coldSelect300Budget {
		t.Errorf("cold ieee300 selection took %v, budget %v — a PR 7/PR 8 stage "+
			"(pricing, sparse LU, estimator reuse, solve memo, pre-screen, "+
			"restart screen) has regressed", best, coldSelect300Budget)
	}
}

// diskServeBudget is the PR 9 restart contract: a daemon restarted over
// its cache directory serves a previously computed ieee300 selection from
// disk in under 10 ms — no search, no LP, just a read, a JSON decode and
// a key check. The actual cost is microsecond-class; the budget absorbs a
// cold page cache on a loaded runner.
const diskServeBudget = 10 * time.Millisecond

// TestRestartServesIeee300FromDisk computes the benchmark ieee300
// selection once into a disk cache, then simulates a daemon restart (a
// fresh planner over the same directory, empty memo, cold engines) and
// requires the warm serve to come from disk, bitwise-equal, inside the
// budget. Best-of-three on the timing only — the source and payload
// assertions are unconditional.
func TestRestartServesIeee300FromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	dir := t.TempDir()
	open := func() *diskcache.Cache {
		d, err := diskcache.Open(diskcache.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	cold, err := planner.New(planner.Config{Disk: open()}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	best := time.Duration(1<<63 - 1)
	var warm *planner.SelectResponse
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{Disk: open()})
		start := time.Now()
		warm, err = p.Select(req)
		if d := time.Since(start); d < best {
			best = d
		}
		if err != nil {
			t.Fatal(err)
		}
		if warm.Source != planner.SourceDisk {
			t.Fatalf("restarted planner served source %q, want %q — it re-solved", warm.Source, planner.SourceDisk)
		}
		if best <= diskServeBudget {
			break
		}
	}
	c, w := *cold, *warm
	c.CacheHit, w.CacheHit = false, false
	c.Source, w.Source = "", ""
	c.ElapsedMS, w.ElapsedMS = 0, 0
	if c.Gamma != w.Gamma || c.CostIncrease != w.CostIncrease {
		t.Errorf("disk-served selection differs: γ %v vs %v, cost %v vs %v",
			w.Gamma, c.Gamma, w.CostIncrease, c.CostIncrease)
	}
	t.Logf("restart-warm ieee300 selection: best %v (budget %v, cold compute %.0f ms)",
		best, diskServeBudget, cold.ElapsedMS)
	if best > diskServeBudget {
		t.Errorf("restarted daemon took %v to serve the cached ieee300 selection, budget %v",
			best, diskServeBudget)
	}
}
