package gridmtd_test

import (
	"testing"
	"time"

	"gridmtd/internal/planner"
)

// coldSelectBudget is 2x the worst cold ieee118 selection latency recorded
// in PERF.md's PR 6 table (103-140 ms on the 1-core reference box at the
// CI smoke point). The headroom absorbs runner noise; a regression back
// toward the 0.6 s tableau-resolve floor still trips it by a wide margin.
const coldSelectBudget = 280 * time.Millisecond

// TestColdSelectLatencyBudget holds the cold 118-bus planner selection —
// fresh planner, nothing memoized, sketch-γ backend — under its recorded
// latency budget. Best-of-three so a single scheduler hiccup on a shared
// runner doesn't fail the build.
func TestColdSelectLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee118", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelectBudget {
			break
		}
	}
	t.Logf("cold ieee118 selection: best %v (budget %v)", best, coldSelectBudget)
	if best > coldSelectBudget {
		t.Errorf("cold ieee118 selection took %v, budget %v — the crash-basis/"+
			"partial-PTDF cold path has regressed", best, coldSelectBudget)
	}
}

// coldSelect300Budget is 2x the best cold ieee300 selection recorded in
// PERF.md's PR 8 table (~0.89 s on the 1-core reference box, down from
// ~1.2 s at PR 7 via the dispatch-solve memo, the Farkas pre-screen and
// the screened restarts). A regression in any stage — PR 7's pricing,
// sparse LU and estimator reuse, or PR 8's solve-volume cuts — lands
// well above this line.
const coldSelect300Budget = 1800 * time.Millisecond

// TestColdSelect300LatencyBudget holds the cold 300-bus planner selection
// under its recorded budget, best-of-three like the 118-bus assertion.
func TestColdSelect300LatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping latency assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		p := planner.New(planner.Config{})
		start := time.Now()
		if _, err := p.Select(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if best <= coldSelect300Budget {
			break
		}
	}
	t.Logf("cold ieee300 selection: best %v (budget %v)", best, coldSelect300Budget)
	if best > coldSelect300Budget {
		t.Errorf("cold ieee300 selection took %v, budget %v — a PR 7/PR 8 stage "+
			"(pricing, sparse LU, estimator reuse, solve memo, pre-screen, "+
			"restart screen) has regressed", best, coldSelect300Budget)
	}
}
