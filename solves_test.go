package gridmtd_test

import (
	"testing"

	"gridmtd/internal/lp"
	"gridmtd/internal/opf"
	"gridmtd/internal/planner"
)

// coldSelect300SolveCeiling bounds the number of full dispatch LP solves
// one cold ieee300 planner selection may execute. PR 7 measured 179; the
// PR 8 memo + Farkas pre-screen + lazy-penalty skip land well below 90
// (see PERF.md's PR 8 table), and a regression in any of the three —
// cache keys that stop matching, a pre-screen that stops certifying, a
// skip that stops firing — pushes the count back toward 179 and trips
// this ceiling long before the latency budget notices.
const coldSelect300SolveCeiling = 90

// TestColdSelect300SolveBudget runs one cold ieee300 selection and
// asserts the per-request delta of the process-global solve counters
// (lp.RevisedStats.Delta — root-package tests run sequentially, so no
// other selection contributes to the window).
func TestColdSelect300SolveBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping solve-budget assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	lpBefore := lp.GlobalRevisedStats()
	scBefore := opf.GlobalSolveCacheStats()
	p := planner.New(planner.Config{})
	if _, err := p.Select(req); err != nil {
		t.Fatal(err)
	}
	d := lp.GlobalRevisedStats().Delta(lpBefore)
	sc := opf.GlobalSolveCacheStats()
	t.Logf("cold ieee300 selection: %d solves (%d prescreen hits, cache %d hits / %d misses)",
		d.Solves, d.PrescreenHits, sc.Hits-scBefore.Hits, sc.Misses-scBefore.Misses)
	if d.Solves > coldSelect300SolveCeiling {
		t.Errorf("cold ieee300 selection ran %d full dispatch solves, ceiling %d — "+
			"the solve memo, Farkas pre-screen or lazy-penalty skip has regressed",
			d.Solves, coldSelect300SolveCeiling)
	}
}
