package gridmtd_test

import (
	"testing"

	"gridmtd/internal/lp"
	"gridmtd/internal/opf"
	"gridmtd/internal/planner"
)

// coldSelect300SolveCeiling bounds the number of full dispatch LP solves
// one cold ieee300 planner selection may execute. PR 7 measured 179; the
// PR 8 memo + Farkas pre-screen + lazy-penalty skip land well below 90
// (see PERF.md's PR 8 table), and a regression in any of the three —
// cache keys that stop matching, a pre-screen that stops certifying, a
// skip that stops firing — pushes the count back toward 179 and trips
// this ceiling long before the latency budget notices.
//
// PR 10's dual-bound screen probes this trajectory 31 times but never
// fires: ieee300's line limits don't bind at this operating point, so
// the landscape is flat and every probed candidate either genuinely
// improves the threshold or ties it exactly (ties sit inside the
// certification margin and must solve — screening them would trade
// exactness for two solves). The measured floor stays 88 = the number
// of distinct accepted-trajectory points; see PERF.md's PR 10 section
// for the full solve-site breakdown and the ieee118 contrast, where
// limits bind and the screen retires solves.
const coldSelect300SolveCeiling = 90

// coldSelect118SolveCeiling bounds the cold ieee118 selection the same
// way. ieee118's calibrated branch ratings BIND, so this is the case
// that exercises the dual-bound screen end to end: PR 10 measured 65
// solves with 13 bound probes and 2 certified screens on the benchmark
// request. The ceiling also guards the screen's soundness economics: a
// screen that silently stopped firing shows up here as +screens solves.
const coldSelect118SolveCeiling = 70

// TestColdSelect300SolveBudget runs one cold ieee300 selection and
// asserts the per-request delta of the process-global solve counters
// (lp.RevisedStats.Delta — root-package tests run sequentially, so no
// other selection contributes to the window).
func TestColdSelect300SolveBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping solve-budget assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	lpBefore := lp.GlobalRevisedStats()
	scBefore := opf.GlobalSolveCacheStats()
	p := planner.New(planner.Config{})
	if _, err := p.Select(req); err != nil {
		t.Fatal(err)
	}
	d := lp.GlobalRevisedStats().Delta(lpBefore)
	sc := opf.GlobalSolveCacheStats()
	t.Logf("cold ieee300 selection: %d solves (%d prescreen hits, %d bound probes / %d screens, cache %d hits / %d misses)",
		d.Solves, d.PrescreenHits, d.BoundProbes, d.BoundScreens,
		sc.Hits-scBefore.Hits, sc.Misses-scBefore.Misses)
	if d.Solves > coldSelect300SolveCeiling {
		t.Errorf("cold ieee300 selection ran %d full dispatch solves, ceiling %d — "+
			"the solve memo, Farkas pre-screen or lazy-penalty skip has regressed",
			d.Solves, coldSelect300SolveCeiling)
	}
}

// TestColdSelect118SolveBudget is the binding-limits counterpart: the
// benchmark ieee118 selection must stay under its solve ceiling AND the
// dual-bound screen must actually fire on it (this is the case whose
// landscape has real gradients for the screen to cut).
func TestColdSelect118SolveBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping solve-budget assertion in -short mode")
	}
	req := planner.SelectRequest{
		Case: "ieee118", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20,
		GammaBackend: "sketch",
	}
	lpBefore := lp.GlobalRevisedStats()
	p := planner.New(planner.Config{})
	if _, err := p.Select(req); err != nil {
		t.Fatal(err)
	}
	d := lp.GlobalRevisedStats().Delta(lpBefore)
	t.Logf("cold ieee118 selection: %d solves (%d prescreen hits, %d bound probes / %d screens)",
		d.Solves, d.PrescreenHits, d.BoundProbes, d.BoundScreens)
	if d.Solves > coldSelect118SolveCeiling {
		t.Errorf("cold ieee118 selection ran %d full dispatch solves, ceiling %d",
			d.Solves, coldSelect118SolveCeiling)
	}
	if d.BoundScreens == 0 {
		t.Errorf("cold ieee118 selection fired 0 dual-bound screens (%d probes) — "+
			"the screen has stopped cutting solves on the binding-limits case",
			d.BoundProbes)
	}
}
