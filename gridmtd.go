package gridmtd

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"gridmtd/internal/attack"
	"gridmtd/internal/core"
	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/loadprofile"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/planner"
	"gridmtd/internal/scenario"
	"gridmtd/internal/se"
	"gridmtd/internal/sim"
	"gridmtd/internal/subspace"
)

// ---- Grid model ----------------------------------------------------------

// Network is a power system model: buses, branches (optionally carrying
// D-FACTS devices), and generators with linear costs.
type Network = grid.Network

// Bus is a network node with a real-power load.
type Bus = grid.Bus

// Branch is a transmission line; HasDFACTS marks defender-perturbable
// reactances.
type Branch = grid.Branch

// Generator is a dispatchable source with a linear cost curve.
type Generator = grid.Generator

// Unlimited is a convenience flow limit for unconstrained branches.
var Unlimited = grid.Unlimited

// NewCase4GS returns the 4-bus system of the paper's motivating example
// (MATPOWER case4gs with the reverse-engineered Table II/III economics).
func NewCase4GS() *Network { return grid.Case4GS() }

// NewIEEE14 returns the IEEE 14-bus system with the paper's Table-IV
// generators, D-FACTS on branches {1,5,9,11,17,19} (ηmax = 0.5) and the
// 160/60 MW flow limits.
func NewIEEE14() *Network { return grid.CaseIEEE14() }

// NewIEEE30 returns the IEEE 30-bus system used in the paper's
// scalability experiment.
func NewIEEE30() *Network { return grid.CaseIEEE30() }

// NewIEEE57 returns the IEEE 57-bus system, the first case beyond the
// paper's own evaluation sizes (parallel circuits merged, calibrated
// ratings; see internal/grid/cases).
func NewIEEE57() *Network { return grid.CaseIEEE57() }

// NewIEEE118 returns the IEEE 118-bus system — the grid the related MTD
// literature evaluates on, served by the sparse linear-algebra backend.
func NewIEEE118() *Network { return grid.CaseIEEE118() }

// CaseInfo summarizes one registered case for listings.
type CaseInfo = grid.CaseInfo

// Cases lists the embedded case registry, smallest system first.
func Cases() []CaseInfo { return grid.Cases() }

// CaseNames returns the primary names of the registered cases.
func CaseNames() []string { return grid.CaseNames() }

// CaseByName builds a fresh, validated Network for a registered case name
// or alias ("ieee118", "118bus", ...). The error for an unknown name lists
// what is available.
func CaseByName(name string) (*Network, error) { return grid.CaseByName(name) }

// FormatCases writes the case-registry listing to w, one line per case —
// the shared renderer behind every command's "-case list".
func FormatCases(w io.Writer) {
	for _, ci := range Cases() {
		aliases := ""
		if len(ci.Aliases) > 0 {
			aliases = " (aliases: " + strings.Join(ci.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "%-10s %3d buses, %3d branches, %2d D-FACTS  %s%s\n",
			ci.Name, ci.Buses, ci.Branches, ci.DFACTS, ci.Title, aliases)
	}
}

// ---- Power flow & OPF ----------------------------------------------------

// PowerFlow is a solved DC power flow.
type PowerFlow = dcflow.Result

// RunPowerFlow solves the DC power flow for branch reactances x (per-unit)
// and net bus injections (MW, must balance).
func RunPowerFlow(n *Network, x, injectionsMW []float64) (*PowerFlow, error) {
	return dcflow.Solve(n, x, injectionsMW)
}

// Measurements builds the noiseless sensor vector z = [p; f; −f]
// (per-unit) for a solved power flow.
func Measurements(n *Network, injectionsMW []float64, pf *PowerFlow) []float64 {
	return dcflow.Measurements(n, injectionsMW, pf)
}

// Backend names a linear-algebra backend for the reduced-susceptance
// factorization and the dispatch LP: the dense backend is the historical,
// bitwise-reproducible path; the sparse backend (automatic at or above
// grid.SparseThreshold buses) adds the sparse Cholesky factorization, the
// warm-started revised simplex and the multi-accumulator γ kernels under a
// 1e-9-agreement contract.
type Backend = grid.Backend

// Backend choices for NewDispatchEngineBackend and SetDefaultBackend.
const (
	AutoBackend   = grid.AutoBackend
	DenseBackend  = grid.DenseBackend
	SparseBackend = grid.SparseBackend
)

// ParseBackend parses a -backend flag value ("auto", "dense", "sparse").
func ParseBackend(s string) (Backend, error) { return grid.ParseBackend(s) }

// SetDefaultBackend overrides what the automatic backend choice resolves
// to for everything constructed afterwards — the hook behind the cmds'
// -backend flag, so dense-vs-sparse A/B runs need no code edits.
func SetDefaultBackend(b Backend) { grid.SetDefaultBackend(b) }

// GammaBackend names a γ-evaluation strategy: exact (the reference
// principal-angle pipeline, bitwise below the sparse threshold and
// fast-kernel 1e-9 above it), sparse (CSC-aware Gram-Schmidt skipping
// structural zeros, 1e-9 agreement) or sketch (sparse-Gram Cholesky plus
// seeded randomized Lanczos under a documented error bound with automatic
// exact fallback). Selected through the same seam pattern as Backend.
type GammaBackend = core.GammaBackend

// γ-backend choices for NewGammaEvaluatorBackend and SetDefaultGammaBackend.
const (
	GammaAuto   = core.AutoGamma
	GammaExact  = core.ExactGamma
	GammaSparse = core.SparseGamma
	GammaSketch = core.SketchGamma
)

// ParseGammaBackend parses a -gamma flag value ("auto", "exact", "sparse",
// "sketch"); the error for an unknown value lists every valid choice.
func ParseGammaBackend(s string) (GammaBackend, error) { return subspace.ParseGammaBackend(s) }

// SetDefaultGammaBackend overrides what the automatic γ-backend choice
// resolves to for every γ engine constructed afterwards — the hook behind
// the cmds' -gamma flag, so backend A/B runs need no code edits.
func SetDefaultGammaBackend(b GammaBackend) { subspace.SetDefaultGammaBackend(b) }

// EffectiveGammaBackend resolves a possibly-auto γ-backend choice: the
// process default first, then exact.
func EffectiveGammaBackend(b GammaBackend) GammaBackend { return subspace.EffectiveGammaBackend(b) }

// FormatGammaBackends writes the γ-backend listing to w, one line per
// backend — the shared renderer behind every command's "-gamma list".
func FormatGammaBackends(w io.Writer) {
	for _, gb := range subspace.GammaBackends() {
		fmt.Fprintf(w, "%-8s %s\n", gb.Name, gb.Desc)
	}
}

// FormatBackends writes the linear-algebra backend listing to w — the
// renderer behind "-backend list".
func FormatBackends(w io.Writer) {
	for _, b := range grid.Backends() {
		fmt.Fprintf(w, "%-8s %s\n", b.Name, b.Desc)
	}
}

// ResolveCommonFlags implements the CLI contract every command's
// -case/-backend/-gamma trio shares: a "list" value (case-insensitive, in
// that precedence order) prints the matching registry listing to w and
// reports handled=true, otherwise the backend values are parsed and
// installed as the process defaults. The three commands delegating here
// (mtdexp, mtdscan, gridopf) therefore print byte-identical listings; the
// cmd tests pin that.
func ResolveCommonFlags(w io.Writer, caseName, backend, gamma string) (handled bool, err error) {
	if strings.EqualFold(caseName, "list") {
		FormatCases(w)
		return true, nil
	}
	if strings.EqualFold(backend, "list") {
		FormatBackends(w)
		return true, nil
	}
	if strings.EqualFold(gamma, "list") {
		FormatGammaBackends(w)
		return true, nil
	}
	b, err := ParseBackend(backend)
	if err != nil {
		return false, err
	}
	SetDefaultBackend(b)
	gb, err := ParseGammaBackend(gamma)
	if err != nil {
		return false, err
	}
	SetDefaultGammaBackend(gb)
	return false, nil
}

// LPStats is the revised-simplex counter set (see the lp package's
// RevisedStats for each counter's precise meaning).
type LPStats = lp.RevisedStats

// GlobalLPStats returns the process-wide revised-simplex counters
// accumulated since process start across every dispatch-LP solver — eta
// updates vs refactorizations, warm-path fallbacks — the numbers mtdexp -v
// prints and gridmtdd serves at /v1/stats.
func GlobalLPStats() LPStats { return lp.GlobalRevisedStats() }

// FormatLPStats writes the one-block human rendering of LP counters that
// mtdexp -v appends after a run.
func FormatLPStats(w io.Writer, s LPStats) {
	fmt.Fprintf(w, "dispatch LP: %d solves (%d warm, %d cold, %d fallbacks)\n",
		s.Solves, s.WarmSolves, s.ColdSolves, s.Fallbacks)
	fmt.Fprintf(w, "  warm pivots: %d primal, %d dual (%d steepest-edge, %d bound flips); basis exchanges: %d eta updates, %d refactorizations\n",
		s.PrimalPivots, s.DualPivots, s.SEPivots, s.BoundFlips, s.EtaUpdates, s.Refactorizations)
	fmt.Fprintf(w, "  pricing-weight resets: %d; sparse working-matrix factorizations: %d\n",
		s.WeightResets, s.SparseFactors)
	fmt.Fprintf(w, "  infeasibility: %d certified by full solves, %d pre-screened by recycled Farkas rays (%d ray probes)\n",
		s.InfeasibleSolves, s.PrescreenHits, s.PrescreenProbes)
	fmt.Fprintf(w, "  dual-bound screen: %d solves skipped with certified bounds (%d probes)\n",
		s.BoundScreens, s.BoundProbes)
}

// FormatSolveCacheStats writes the one-line human rendering of the
// dispatch-solve memo counters that mtdexp -v appends after FormatLPStats.
func FormatSolveCacheStats(w io.Writer, c SolveCacheStats) {
	fmt.Fprintf(w, "dispatch-solve memo: %d hits, %d misses\n", c.Hits, c.Misses)
}

// SolveCacheStats is the dispatch-solve memo counter set (see the opf
// package's SolveCacheStats for the counters' precise meanings).
type SolveCacheStats = opf.SolveCacheStats

// GlobalSolveCacheStats returns the process-wide dispatch-solve memo
// counters: how many dispatch LPs the bitwise (loads, reactances) cache
// answered without running the simplex.
func GlobalSolveCacheStats() SolveCacheStats { return opf.GlobalSolveCacheStats() }

// OPFResult is a solved optimal power flow.
type OPFResult = opf.Result

// DispatchEngine solves the dispatch-only OPF for many reactance vectors
// against one network, with cached LP skeletons and per-worker sessions
// (see NewDispatchEngineBackend for explicit backend control).
type DispatchEngine = opf.DispatchEngine

// DispatchSession is a single-goroutine view of a DispatchEngine with a
// private workspace and, on the sparse path, the warm LP basis.
type DispatchSession = opf.DispatchSession

// NewDispatchEngine builds a dispatch-OPF engine with the automatic
// backend choice.
func NewDispatchEngine(n *Network) (*DispatchEngine, error) {
	return opf.NewDispatchEngine(n)
}

// NewDispatchEngineBackend is NewDispatchEngine with an explicit backend.
func NewDispatchEngineBackend(n *Network, b Backend) (*DispatchEngine, error) {
	return opf.NewDispatchEngineBackend(n, b)
}

// DFACTSOPFConfig tunes the reactance search of SolveOPFWithDFACTS.
type DFACTSOPFConfig = opf.DFACTSConfig

// SolveOPF solves the dispatch-only DC OPF at fixed reactances x (the
// paper's problem (1) without D-FACTS, footnote 1).
func SolveOPF(n *Network, x []float64) (*OPFResult, error) {
	return opf.SolveDispatch(n, x)
}

// SolveOPFWithDFACTS solves the paper's problem (1) in full: generation
// cost minimized over both dispatch and D-FACTS reactance settings.
func SolveOPFWithDFACTS(n *Network, cfg DFACTSOPFConfig) (*OPFResult, error) {
	return opf.SolveDFACTS(n, cfg)
}

// ---- State estimation & attacks -------------------------------------------

// Estimator is a least-squares DC state estimator for a fixed measurement
// matrix.
type Estimator = se.Estimator

// BDD is the residual-based bad data detector.
type BDD = se.BDD

// NewEstimator builds a state estimator for the network at reactances x.
func NewEstimator(n *Network, x []float64) (*Estimator, error) {
	return se.NewEstimator(n.MeasurementMatrix(x))
}

// NewBDD calibrates a bad data detector for the estimator at noise level
// sigma (per-unit) and false-positive rate alpha.
func NewBDD(e *Estimator, sigma, alpha float64) (*BDD, error) {
	return se.NewBDD(e, sigma, alpha)
}

// Attack is a crafted false-data-injection vector a = H·c.
type Attack = attack.Vector

// CraftAttack builds the BDD-bypassing attack a = H(x)·c for a state
// perturbation c in the reduced (slack-removed) state space.
func CraftAttack(n *Network, x, c []float64) *Attack {
	return attack.Craft(n.MeasurementMatrix(x), c)
}

// RandomAttack draws a random stealthy attack scaled so that
// ‖a‖₁/‖z‖₁ = ratio (the paper uses ≈ 0.08).
func RandomAttack(rng *rand.Rand, n *Network, x, z []float64, ratio float64) (*Attack, error) {
	return attack.Random(rng, n.MeasurementMatrix(x), z, ratio)
}

// IsUndetectable applies the paper's Proposition 1: does attack vector a
// (crafted on an older matrix) still lie in the column space of the
// measurement matrix at reactances xNew?
func IsUndetectable(n *Network, xNew, a []float64) bool {
	return attack.IsUndetectable(n.MeasurementMatrix(xNew), a, 0)
}

// ---- MTD ------------------------------------------------------------------

// EffectivenessConfig controls the η'(δ) evaluation (attack count, noise
// level, FP rate, δ thresholds, analytic vs Monte-Carlo detection).
type EffectivenessConfig = core.EffectivenessConfig

// EffectivenessResult carries γ, the η'(δ) curve and per-attack detection
// probabilities.
type EffectivenessResult = core.EffectivenessResult

// AttackSet is a reusable batch of crafted attacks.
type AttackSet = core.AttackSet

// MTDSelection is a chosen perturbation with its γ, OPF and cost metrics.
type MTDSelection = core.Selection

// MTDSelectConfig tunes the problem-(4) search.
type MTDSelectConfig = core.SelectConfig

// MaxGammaConfig tunes the pure-detection (max-γ) search.
type MaxGammaConfig = core.MaxGammaConfig

// TuneConfig drives the γ-threshold auto-tuning loop.
type TuneConfig = core.TuneConfig

// DefaultDeltas are the paper's detection-probability thresholds
// {0.5, 0.8, 0.9, 0.95}.
var DefaultDeltas = core.DefaultDeltas

// ErrGammaUnreachable is returned by SelectMTD when no setting within the
// D-FACTS limits achieves the requested γ threshold.
var ErrGammaUnreachable = core.ErrConstraintUnreachable

// ErrNoDFACTS is returned by MTD routines on networks without D-FACTS
// devices.
var ErrNoDFACTS = core.ErrNoDFACTS

// OperatingMeasurements returns the noiseless measurement vector of the
// OPF operating point at reactances x (used to scale attack magnitudes).
func OperatingMeasurements(n *Network, x []float64) ([]float64, error) {
	return core.OperatingMeasurements(n, x)
}

// Effectiveness evaluates the paper's η'(δ) metric for the MTD that moves
// the reactances from xOld (attacker's knowledge) to xNew, with zOld the
// operating measurements under xOld.
func Effectiveness(n *Network, xOld, xNew, zOld []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	return core.Effectiveness(n, xOld, xNew, zOld, cfg)
}

// SampleAttacks pre-crafts an attack batch for reuse across perturbations.
func SampleAttacks(n *Network, xOld, zOld []float64, cfg EffectivenessConfig) (*AttackSet, error) {
	return core.SampleAttacks(n, xOld, zOld, cfg)
}

// EvaluateAttacks computes the effectiveness of perturbation xNew against
// a pre-crafted attack set.
func EvaluateAttacks(n *Network, set *AttackSet, xNew []float64, cfg EffectivenessConfig) (*EffectivenessResult, error) {
	return core.EvaluateAttacks(n, set, xNew, cfg)
}

// SelectMTD solves the paper's problem (4): a cost-minimal reactance
// perturbation subject to γ(H(xOld), H(x')) ≥ γ_th.
func SelectMTD(n *Network, xOld []float64, cfg MTDSelectConfig) (*MTDSelection, error) {
	return core.SelectMTD(n, xOld, cfg)
}

// MaxGamma finds the most detection-effective perturbation the D-FACTS
// hardware allows, regardless of cost.
func MaxGamma(n *Network, xOld []float64, cfg MaxGammaConfig) (*MTDSelection, error) {
	return core.MaxGamma(n, xOld, cfg)
}

// RandomPerturbation applies a naive random baseline: independent uniform
// reactance perturbations within ±maxFrac on every D-FACTS branch.
func RandomPerturbation(rng *rand.Rand, n *Network, maxFrac float64) ([]float64, error) {
	return core.RandomPerturbation(rng, n, maxFrac)
}

// RandomKeyWithinCost draws one key of the prior-work random MTD keyspace:
// a uniform D-FACTS setting accepted when its OPF cost stays within
// costFrac of baselineCost (the paper reads prior work's "within 2% of the
// optimal value" as this cost budget). It returns the reactance vector,
// its OPF cost and the number of draws used.
func RandomKeyWithinCost(rng *rand.Rand, n *Network, baselineCost, costFrac float64, maxDraws int) ([]float64, float64, int, error) {
	return core.RandomKeyWithinCost(rng, n, baselineCost, costFrac, maxDraws)
}

// TuneGammaThreshold bisects γ_th to the smallest value whose selected MTD
// achieves the target effectiveness (the paper's daily procedure).
func TuneGammaThreshold(n *Network, xOld, zOld []float64, cfg TuneConfig) (*MTDSelection, *EffectivenessResult, error) {
	return core.TuneGammaThreshold(n, xOld, zOld, cfg)
}

// Gamma returns the subspace separation γ(H(xOld), H(xNew)): the largest
// principal angle between the two measurement column spaces.
func Gamma(n *Network, xOld, xNew []float64) float64 {
	return core.Gamma(n, xOld, xNew)
}

// GammaEvaluator evaluates γ(H(xOld), H(x')) for many candidate
// perturbations against one fixed pre-perturbation configuration. It
// orthonormalizes H(xOld) once at construction and reuses per-goroutine
// workspaces, so each evaluation costs only the candidate-side work; the
// values are bitwise identical to Gamma. It is safe for concurrent use —
// the parallel multi-start selection shares one evaluator across workers.
type GammaEvaluator = core.GammaEvaluator

// NewGammaEvaluator builds a cached γ evaluator for the pre-perturbation
// reactance vector xOld.
func NewGammaEvaluator(n *Network, xOld []float64) *GammaEvaluator {
	return core.NewGammaEvaluator(n, xOld)
}

// NewGammaEvaluatorBackend is NewGammaEvaluator with an explicit γ-backend
// choice (see GammaBackend; the evaluator's Backend method reports what
// actually serves).
func NewGammaEvaluatorBackend(n *Network, xOld []float64, gb GammaBackend) *GammaEvaluator {
	return core.NewGammaEvaluatorBackend(n, xOld, gb)
}

// PrincipalAngles returns all principal angles between the column spaces
// of the measurement matrices at the two settings (ascending, radians).
func PrincipalAngles(n *Network, xOld, xNew []float64) []float64 {
	return subspace.PrincipalAngles(n.MeasurementMatrix(xOld), n.MeasurementMatrix(xNew))
}

// OperationalCost is the paper's C_MTD metric: the relative OPF cost
// increase of the MTD over the no-MTD optimum.
func OperationalCost(baselineCost, mtdCost float64) float64 {
	return core.OperationalCost(baselineCost, mtdCost)
}

// ---- Scenario layer ---------------------------------------------------------

// Scenario declaratively describes one study — case, loading, attacker
// model, sweep and budgets — and compiles to a deterministic batch of
// evaluation units. Every repeated-evaluation workload (the experiments,
// the examples, mtdscan, the gridmtdd planner service) is a Scenario; the
// runner shares one dispatch-OPF engine per case across all of a
// scenario's units.
type Scenario = scenario.Spec

// ScenarioKind selects a Scenario's workload.
type ScenarioKind = scenario.Kind

// Scenario workload kinds.
const (
	// ScenarioGammaSweep solves problem (4) along a γ-threshold grid
	// (Figs. 6/9, mtdscan, single selection requests).
	ScenarioGammaSweep = scenario.GammaSweep
	// ScenarioDaySweep runs the Section VII-C hourly operating day with one
	// dispatch engine for the whole day (Figs. 10-11, dailyops).
	ScenarioDaySweep = scenario.DaySweep
	// ScenarioRandomKeys draws prior-work random keyspace perturbations
	// under an OPF-cost budget (Figs. 7-8, the random baseline).
	ScenarioRandomKeys = scenario.RandomKeys
	// ScenarioLearning runs the attacker's subspace-learning curve and the
	// MTD staleness probe (Section IV-A).
	ScenarioLearning = scenario.Learning
	// ScenarioPlacement greedily searches D-FACTS device subsets for the
	// deployment maximizing the reachable γ.
	ScenarioPlacement = scenario.Placement
)

// ScenarioRow is one evaluation unit's outcome.
type ScenarioRow = scenario.Row

// ScenarioResult is one executed Scenario.
type ScenarioResult = scenario.Result

// ScenarioRunner executes scenarios against shared per-case engines; one
// long-lived runner amortizes engine construction across runs on the same
// network.
type ScenarioRunner = scenario.Runner

// PlacementSpec parameterizes the placement-study scenario.
type PlacementSpec = scenario.PlacementSpec

// NewScenarioRunner returns an empty scenario runner.
func NewScenarioRunner() *ScenarioRunner { return scenario.NewRunner() }

// RunScenario compiles and executes one scenario on a fresh runner.
func RunScenario(s Scenario) (*ScenarioResult, error) { return scenario.NewRunner().Run(s) }

// ---- Planner service --------------------------------------------------------

// Planner is the long-running, concurrency-safe selection front-end: it
// answers MTD selection, γ-evaluation, day-sweep and placement requests
// with an LRU of factorized cases and a memo of finished responses, so
// repeated and related requests amortize all engine state. cmd/gridmtdd
// serves one over HTTP.
type Planner = planner.Planner

// PlannerConfig tunes a Planner's backend, cache capacities and
// per-request parallelism.
type PlannerConfig = planner.Config

// PlannerStats counts a Planner's cache traffic.
type PlannerStats = planner.Stats

// Planner request/response pairs.
type (
	SelectRequest     = planner.SelectRequest
	SelectResponse    = planner.SelectResponse
	GammaRequest      = planner.GammaRequest
	GammaResponse     = planner.GammaResponse
	DaySweepRequest   = planner.DaySweepRequest
	DaySweepResponse  = planner.DaySweepResponse
	PlacementRequest  = planner.PlacementRequest
	PlacementResponse = planner.PlacementResponse
)

// ErrGammaUnreachableRequest is returned by Planner.Select when the
// requested γ threshold is beyond the case's D-FACTS reach and no max-γ
// fallback was requested.
var ErrGammaUnreachableRequest = planner.ErrUnreachable

// NewPlanner builds a planner service instance.
func NewPlanner(cfg PlannerConfig) *Planner { return planner.New(cfg) }

// ---- Simulations -----------------------------------------------------------

// HourResult is one hour of the daily MTD simulation.
type HourResult = sim.HourResult

// DayConfig configures the daily simulation.
type DayConfig = sim.DayConfig

// RunDay executes the paper's day-long hourly MTD loop (Figs. 10-11).
func RunDay(cfg DayConfig) ([]HourResult, error) { return sim.RunDay(cfg) }

// LearningConfig configures the attacker's subspace-learning simulation.
type LearningConfig = sim.LearningConfig

// LearningOutcome reports the attacker's subspace estimation error.
type LearningOutcome = sim.LearningOutcome

// SimulateLearning runs the attacker's measurement-driven estimation of
// Col(H) and reports the residual angle to the truth.
func SimulateLearning(n *Network, x []float64, cfg LearningConfig) (*LearningOutcome, error) {
	return sim.SimulateLearning(n, x, cfg)
}

// LearnedModelGamma returns the angle γ between an attacker's learned
// subspace and the true measurement column space at reactances x — large
// after an MTD perturbation, which is exactly the defense's point.
func LearnedModelGamma(n *Network, x []float64, learned *LearningOutcome) float64 {
	return subspace.Gamma(n.MeasurementMatrix(x), learned.Basis)
}

// ---- Load profiles ----------------------------------------------------------

// NYWinterWeekday returns the embedded 24-hour winter-weekday load shape
// (peak-normalized) used by the dynamic-load experiments.
func NYWinterWeekday() []float64 { return loadprofile.NYWinterWeekday() }

// ScaleToPeak rescales a load shape so a network with base total load
// baseTotalMW peaks at peakTotalMW.
func ScaleToPeak(shape []float64, baseTotalMW, peakTotalMW float64) ([]float64, error) {
	return loadprofile.ScaleToPeak(shape, baseTotalMW, peakTotalMW)
}

// HourLabel converts a 24-hour profile index to a clock label.
func HourLabel(i int) string { return loadprofile.HourLabel(i) }

// ---- Small numeric helpers re-exported for example programs ----------------

// Norm1 returns the L1 norm of a vector.
func Norm1(x []float64) float64 { return mat.Norm1(x) }

// Norm2 returns the Euclidean norm of a vector.
func Norm2(x []float64) float64 { return mat.Norm2(x) }
