// Package gridmtd is a reproduction of "Cost-Benefit Analysis of
// Moving-Target Defense in Power Grids" (Lakshminarayana & Yau, IEEE/IFIP
// DSN 2018) as a reusable Go library.
//
// The library models a DC power grid with D-FACTS-equipped transmission
// lines, runs state estimation with a χ²-calibrated bad data detector
// (BDD), crafts the stealthy false-data-injection (FDI) attacks the BDD
// cannot see, and implements the paper's moving-target defense (MTD):
// perturb branch reactances so that attacks crafted against the old
// measurement matrix become detectable, while accounting for the
// perturbation's operational (OPF) cost.
//
// # Quick start
//
//	n := gridmtd.NewIEEE14()
//	pre, _ := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 8})
//	z, _ := gridmtd.OperatingMeasurements(n, pre.Reactances)
//
//	// The attacker learned H(pre.Reactances) and crafts stealthy attacks.
//	// The defender selects a cost-minimal perturbation with γ >= 0.3:
//	sel, _ := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
//		GammaThreshold: 0.3,
//	})
//	eff, _ := gridmtd.Effectiveness(n, pre.Reactances, sel.Reactances, z,
//		gridmtd.EffectivenessConfig{})
//	fmt.Printf("γ=%.2f, η'(0.95)=%.2f, cost +%.2f%%\n",
//		eff.Gamma, eff.Eta[3], 100*sel.CostIncrease)
//
// Five IEEE cases are embedded and served through a registry
// (CaseByName/Cases): the paper's 4-, 14- and 30-bus systems, 57- and
// 118-bus systems with calibrated ratings, and a 300-bus scaling case.
// Everything — the runnable programs, cmd/mtdexp's case-generic
// experiments, cmd/mtdscan's frontier sweeps — takes a -case flag; on the
// ≥57-bus cases the susceptance solves route transparently through a
// sparse Cholesky backend (PERF.md records the crossover).
//
// # Scenarios and the planner service
//
// Repeated-evaluation studies are described declaratively as a Scenario
// (case × loading × attack model × sweep × budgets × seed) and executed
// by a runner that shares one dispatch-OPF engine per case across every
// evaluation unit:
//
//	res, _ := gridmtd.RunScenario(gridmtd.Scenario{
//		Kind:         gridmtd.ScenarioGammaSweep,
//		Case:         "ieee57",
//		GammaGrid:    []float64{0.05, 0.10, 0.15},
//		SelectStarts: 6, Seed: 1, OPFStarts: 6, OPFSeed: 1,
//	})
//
// The experiments, the example programs and cmd/mtdscan all run on this
// layer (dense-path outputs are bitwise identical to the historical
// bespoke loops, and identical for every worker count). Long-running
// deployments use the Planner — an LRU of factorized cases plus a memo
// of finished responses — either in-process (NewPlanner) or over HTTP
// via the cmd/gridmtdd daemon (select / γ / day-sweep / placement
// endpoints; a repeated request is a cache lookup). The placement
// scenario (ScenarioPlacement) greedily searches D-FACTS device subsets
// for the deployment maximizing the reachable γ.
//
// At fleet scale the daemon adds three layers in front of the searches
// themselves: identical in-flight requests coalesce into one computation
// (single-flight; joiners are counted separately from memo hits),
// computations pass a bounded admission queue (-max-inflight /
// -queue-depth; past the queue the daemon sheds 429 + Retry-After rather
// than collapsing), and finished responses persist to a content-addressed
// disk cache (-disk-cache) keyed on the request's bitwise memo key plus
// the case-registry hash, so a restarted daemon serves previously
// computed selections in microseconds instead of re-solving. A
// -route shard1:port,shard2:port front rendezvous-hashes (case, scale)
// over replicas and aggregates their /v1/stats; cmd/gridmtdload drives a
// deterministic mixed workload against either form and gates on SLOs
// (latency percentiles, shed rate, 5xx budget) for CI.
//
// # γ backends
//
// γ evaluation — the largest principal angle between measurement column
// spaces, the hot path of every selection search — runs on a pluggable
// backend layer (GammaBackend, selected like the linear-algebra Backend
// seam, via the -gamma flag, Scenario.GammaBackend or a planner request's
// gamma_backend field):
//
//   - exact (the default): the reference principal-angle pipeline —
//     bitwise-reproducible below the 50-bus sparse threshold, the
//     multi-accumulator fast kernels above it (1e-9 agreement).
//   - sparse: CSC-aware Gram-Schmidt over the reduced measurement rows,
//     skipping structural zeros via topology-fixed column supports; agrees
//     with exact to 1e-9 rad.
//   - sketch: no basis is formed at all — candidate Gram matrices revalue
//     a fixed sparse pattern (Eᵀ·D·G·D·E), orthonormality lives implicitly
//     in their sparse Cholesky factors, and sin²γ comes from a seeded
//     Lanczos iteration. ~30× per candidate at 118 buses and ~100× at 300
//     (PERF.md), under a documented 1e-6 error bound (measured ≤ 1e-12)
//     with automatic exact fallback near the rank cutoff.
//
// Approximate backends only ever guide searches: SelectMTD/MaxGamma
// re-check the winning candidate exactly, and the placement study
// re-checks each greedy round's winner, so every reported γ is exact.
// Attack-set evaluation follows the same contract — residuals are
// screened through the sparse-Gram sketch and re-checked exactly near
// every detection threshold, so reported η′(δ) is exact. "-gamma list"
// (and "-backend list") on the commands describe the choices.
//
// Underneath, the dispatch LP runs a bounded-variable revised simplex
// with product-form (eta-file) factorization updates, a deterministic
// crash basis when no warm basis exists, and certified dual-simplex
// infeasibility detection; lp.GlobalRevisedStats counters surface
// through the daemon's /v1/stats and mtdexp -v. PERF.md records the
// resulting cold-selection latencies (~60 ms at 118 buses, sub-second
// at 300).
//
// On the sparse path the search also avoids repeating work it has
// already done: dispatch engines memoize full solves under a bitwise
// (loads, x) key — a hit returns bitwise what a fresh solve computes,
// deterministic infeasibility errors included — the LP solver recycles
// Farkas infeasibility certificates to reject doomed candidates before
// pivoting (every screened rejection revalidates the certificate
// exactly against the candidate's data), and multi-start restarts are
// screened against the deterministic trajectories' optimum so a losing
// restart costs one evaluation instead of a local-search budget.
// Dual-bound screening closes the loop from the other side: each
// verified warm solve banks its optimal duals, and a candidate LP is
// probed against those certificates first — by weak duality any stored
// dual vector prices a certified lower bound on the candidate's optimum
// in O(m·n) with zero pivots, so a candidate whose bound already clears
// the search's acceptance threshold is rejected without solving.
// Screening may only skip solves whose outcome provably cannot change
// the trajectory's accepted points, so search results stay bitwise
// identical to the unscreened run. All of these are invisible to the
// dense/golden path and their traffic is reported by
// GlobalSolveCacheStats, the lp counters (bound probes/screens
// included) and /v1/stats (which supports ?mark=/?since= named
// snapshots for per-request deltas).
//
// The runnable programs under examples/ walk through the full defender
// workflow, the cost-effectiveness tradeoff, a 24-hour operating day and
// the attacker's learning process; cmd/mtdexp regenerates every table and
// figure of the paper (see EXPERIMENTS.md for the comparison).
//
// # Architecture
//
// The facade re-exports the building blocks implemented under internal/:
// dense and sparse linear algebra (internal/mat), χ² statistics
// (internal/stat), an LP simplex solver (internal/lp), derivative-free
// optimizers (internal/optimize), the grid model, case registry and
// factorization backends (internal/grid, internal/grid/cases), DC power
// flow (internal/dcflow), state estimation and BDD (internal/se), FDI
// attacks (internal/attack), principal angles (internal/subspace), DC
// OPF (internal/opf), the MTD algorithms (internal/core), load profiles
// (internal/loadprofile), the daily/learning simulations (internal/sim),
// the scenario layer (internal/scenario) and the planner service
// (internal/planner, served by cmd/gridmtdd).
package gridmtd
