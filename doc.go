// Package gridmtd is a reproduction of "Cost-Benefit Analysis of
// Moving-Target Defense in Power Grids" (Lakshminarayana & Yau, IEEE/IFIP
// DSN 2018) as a reusable Go library.
//
// The library models a DC power grid with D-FACTS-equipped transmission
// lines, runs state estimation with a χ²-calibrated bad data detector
// (BDD), crafts the stealthy false-data-injection (FDI) attacks the BDD
// cannot see, and implements the paper's moving-target defense (MTD):
// perturb branch reactances so that attacks crafted against the old
// measurement matrix become detectable, while accounting for the
// perturbation's operational (OPF) cost.
//
// # Quick start
//
//	n := gridmtd.NewIEEE14()
//	pre, _ := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 8})
//	z, _ := gridmtd.OperatingMeasurements(n, pre.Reactances)
//
//	// The attacker learned H(pre.Reactances) and crafts stealthy attacks.
//	// The defender selects a cost-minimal perturbation with γ >= 0.3:
//	sel, _ := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
//		GammaThreshold: 0.3,
//	})
//	eff, _ := gridmtd.Effectiveness(n, pre.Reactances, sel.Reactances, z,
//		gridmtd.EffectivenessConfig{})
//	fmt.Printf("γ=%.2f, η'(0.95)=%.2f, cost +%.2f%%\n",
//		eff.Gamma, eff.Eta[3], 100*sel.CostIncrease)
//
// Five IEEE cases are embedded and served through a registry
// (CaseByName/Cases): the paper's 4-, 14- and 30-bus systems plus 57- and
// 118-bus systems with calibrated ratings. Everything — the runnable
// programs, cmd/mtdexp's case-generic experiments, cmd/mtdscan's frontier
// sweeps — takes a -case flag; on the ≥57-bus cases the susceptance
// solves route transparently through a sparse Cholesky backend (PERF.md
// records the crossover).
//
// The runnable programs under examples/ walk through the full defender
// workflow, the cost-effectiveness tradeoff, a 24-hour operating day and
// the attacker's learning process; cmd/mtdexp regenerates every table and
// figure of the paper (see EXPERIMENTS.md for the comparison).
//
// # Architecture
//
// The facade re-exports the building blocks implemented under internal/:
// dense and sparse linear algebra (internal/mat), χ² statistics
// (internal/stat), an LP simplex solver (internal/lp), derivative-free
// optimizers (internal/optimize), the grid model, case registry and
// factorization backends (internal/grid, internal/grid/cases), DC power
// flow (internal/dcflow), state estimation and BDD (internal/se), FDI
// attacks (internal/attack), principal angles (internal/subspace), DC
// OPF (internal/opf), the MTD algorithms (internal/core), load profiles
// (internal/loadprofile) and the daily/learning simulations
// (internal/sim).
package gridmtd
