module gridmtd

go 1.24
